//! User data repositories.
//!
//! A repository is the signed, content-addressed store of all of a user's
//! public records (§2, "User Data Repositories"). Updates happen through
//! *commits*: each commit points at the new MST root, carries a monotonically
//! increasing revision TID and is signed with a key from the owner's DID
//! document. The git-like structure retains previous record versions inside
//! the block store, which the paper's discussion section flags as a GDPR
//! concern — we model that by keeping deleted blocks until an explicit
//! garbage-collection call.
//!
//! Each commit additionally logs the blocks it introduced (records and MST
//! nodes), so [`Repository::export_car_since`] can serve the
//! `com.atproto.sync.getRepo(did, since=rev)` delta path — only the blocks
//! created after a known revision — and [`Repository::apply_delta`] lets a
//! mirror reassemble the full archive from a cached CAR plus such a delta.
//!
//! ## Storage and the delta-serving window
//!
//! All record and MST node blocks live behind the pluggable
//! [`crate::blockstore::BlockStore`] trait ([`Repository::with_store`]): the
//! in-memory default, or a paged store that spills cold pages to disk and
//! verifies every read-back by CID. The repository itself keeps only the CID
//! indexes (`record_cids`, the live/stored node sets and the per-commit
//! log) resident, so its memory footprint is governed by the store backend.
//!
//! [`Repository::compact_before`] bounds the grow-only history: commits (and
//! their log entries) older than a cutoff revision leave the delta-serving
//! window, record blocks unreachable from the head that aged out are
//! deleted, and MST node blocks superseded by the live tree are always
//! reclaimable (deltas only ever ship *current* nodes — the per-commit churn
//! log reconstructs historical node *sets* without their bytes). The
//! invariant: [`Repository::export_car_since`] still serves every retained
//! revision exactly; a request since a compacted revision fails with
//! [`AtError::RevisionCompacted`] so the caller can fall back to a full CAR
//! fetch *visibly* (the study pipeline surfaces these fallbacks in its
//! stream summary rather than hiding them).

use crate::blockstore::{BlockStore, MemStore, StoreStats};
use crate::cbor::{self, Value};
use crate::cid::Cid;
use crate::crypto::{Signature, SigningKey};
use crate::datetime::Datetime;
use crate::did::Did;
use crate::error::{AtError, Result};
use crate::mst::Mst;
use crate::nsid::Nsid;
use crate::record::Record;
use crate::tid::{Tid, TidClock};
use std::collections::BTreeMap;

/// A signed repository commit.
#[derive(Debug, Clone, PartialEq)]
pub struct Commit {
    /// The repository owner.
    pub did: Did,
    /// Commit format version (3 in the live network).
    pub version: u8,
    /// MST root CID after this commit.
    pub data: Cid,
    /// Revision TID, strictly increasing per repository.
    pub rev: Tid,
    /// CID of the previous commit, if any.
    pub prev: Option<Cid>,
    /// Signature over the unsigned commit bytes.
    pub sig: Signature,
}

impl Commit {
    /// The commit's own CID (hash of its signed encoding).
    pub fn cid(&self) -> Cid {
        Cid::for_cbor(&self.to_cbor())
    }

    /// The bytes that are signed (everything except the signature).
    pub fn unsigned_bytes(&self) -> Vec<u8> {
        let mut fields = vec![
            ("did".to_string(), Value::text(self.did.to_string())),
            ("version".to_string(), Value::Int(self.version as i64)),
            ("data".to_string(), Value::Link(self.data)),
            ("rev".to_string(), Value::text(self.rev.to_string())),
        ];
        fields.push((
            "prev".to_string(),
            match self.prev {
                Some(c) => Value::Link(c),
                None => Value::Null,
            },
        ));
        cbor::encode(&Value::map(fields))
    }

    /// Full signed encoding. The encoder canonicalises map key order, so
    /// assembling the signed map directly produces exactly the bytes the
    /// old decode-unsigned-then-insert-sig path did, without the round trip.
    pub fn to_cbor(&self) -> Vec<u8> {
        cbor::encode(&Value::map([
            ("did".to_string(), Value::text(self.did.to_string())),
            ("version".to_string(), Value::Int(self.version as i64)),
            ("data".to_string(), Value::Link(self.data)),
            ("rev".to_string(), Value::text(self.rev.to_string())),
            (
                "prev".to_string(),
                match self.prev {
                    Some(c) => Value::Link(c),
                    None => Value::Null,
                },
            ),
            ("sig".to_string(), Value::Bytes(self.sig.0.to_vec())),
        ]))
    }

    /// Verify the signature with the owner's signing key.
    pub fn verify(&self, key: &SigningKey) -> bool {
        crate::crypto::verify(key, &self.unsigned_bytes(), &self.sig)
    }
}

/// The kind of write applied to a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteAction {
    /// A new record was created.
    Create,
    /// An existing record was replaced.
    Update,
    /// A record was deleted.
    Delete,
}

impl WriteAction {
    /// Stable string form used in firehose frames.
    pub fn as_str(&self) -> &'static str {
        match self {
            WriteAction::Create => "create",
            WriteAction::Update => "update",
            WriteAction::Delete => "delete",
        }
    }
}

/// A single record operation inside a commit.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordOp {
    /// Create, update or delete.
    pub action: WriteAction,
    /// Repository key `<collection>/<rkey>`.
    pub key: String,
    /// CID of the new record block (absent for deletes).
    pub cid: Option<Cid>,
}

impl RecordOp {
    /// The collection component of the key.
    pub fn collection(&self) -> &str {
        self.key.split('/').next().unwrap_or(&self.key)
    }

    /// The rkey component of the key.
    pub fn rkey(&self) -> &str {
        self.key.split('/').nth(1).unwrap_or("")
    }
}

/// A write request handed to [`Repository::apply_writes`].
#[derive(Debug, Clone, PartialEq)]
pub enum Write {
    /// Create a new record under a collection and rkey.
    Create {
        /// Collection NSID.
        collection: Nsid,
        /// Record key.
        rkey: String,
        /// The record.
        record: Record,
    },
    /// Replace an existing record.
    Update {
        /// Collection NSID.
        collection: Nsid,
        /// Record key.
        rkey: String,
        /// The new record contents.
        record: Record,
    },
    /// Delete an existing record.
    Delete {
        /// Collection NSID.
        collection: Nsid,
        /// Record key.
        rkey: String,
    },
}

/// The outcome of applying a batch of writes: the new commit plus the record
/// operations, ready to be emitted on the firehose.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitResult {
    /// The newly created commit.
    pub commit: Commit,
    /// The commit's CID (precomputed so firehose producers need not re-hash
    /// the signed encoding per event).
    pub commit_cid: Cid,
    /// The operations included in it.
    pub ops: Vec<RecordOp>,
    /// Approximate number of bytes of new blocks written.
    pub bytes_written: usize,
}

/// A parsed CAR archive: the root CIDs and the block store.
pub type ParsedCar = (Vec<Cid>, BTreeMap<Cid, Vec<u8>>);

/// What a `getRepo(since)` delta must carry.
///
/// The MST node blocks dominate delta size for chatty small repositories:
/// every appended record rewrites its leaf-to-root path, so a weekly sync
/// re-ships each touched path once even though the *records* of that week
/// are much smaller. Consumers that maintain a verifiable block mirror (the
/// Relay) need those nodes; consumers that maintain only decoded records
/// (the §3 dataset mirror) can skip them and verify the head commit alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaScope {
    /// Head commit + net MST node difference + record blocks: everything a
    /// mirror needs to reassemble a full archive via
    /// [`Repository::apply_delta`].
    #[default]
    Full,
    /// Head commit + record blocks only: sufficient (and much smaller) for
    /// consumers that keep decoded records rather than raw block stores.
    Records,
}

/// Per-commit block accounting: which record blocks and which MST node
/// blocks each commit introduced. This is what makes
/// `com.atproto.sync.getRepo(did, since)` cheap — the delta for any known
/// `since` revision is the union of the logged blocks of the commits after
/// it, with no tree reconstruction at request time.
#[derive(Debug, Clone, Default)]
struct CommitBlocks {
    /// Record blocks first written by this commit.
    record_cids: Vec<Cid>,
    /// MST node blocks this commit added to the live tree.
    node_cids: Vec<Cid>,
    /// MST node blocks this commit dropped from the live tree. Together
    /// with `node_cids` this lets a delta export reconstruct the node set
    /// at any past revision by backward replay — O(churn), never a tree
    /// rebuild — and ship only the *net* node difference.
    removed_node_cids: Vec<Cid>,
}

/// What one [`Repository::compact_before`] pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Commits (and their log entries) dropped from the delta window.
    pub commits_dropped: usize,
    /// Aged-out record blocks unreachable from the head that were deleted.
    pub records_dropped: usize,
    /// Superseded MST node blocks deleted.
    pub nodes_dropped: usize,
    /// Logical bytes reclaimed from the block store.
    pub bytes_reclaimed: usize,
}

impl CompactionStats {
    /// Fold another pass's stats into this one.
    pub fn absorb(&mut self, other: &CompactionStats) {
        self.commits_dropped += other.commits_dropped;
        self.records_dropped += other.records_dropped;
        self.nodes_dropped += other.nodes_dropped;
        self.bytes_reclaimed += other.bytes_reclaimed;
    }
}

/// A user repository: block store + MST index + commit chain.
#[derive(Debug, Clone)]
pub struct Repository {
    did: Did,
    signing_key: SigningKey,
    mst: Mst,
    /// All record and MST node blocks, behind the pluggable store.
    store: Box<dyn BlockStore>,
    /// CIDs (and total bytes) of the record blocks currently in the store —
    /// the iteration index for exports and GC, kept resident because it is
    /// small compared to the blocks themselves.
    record_cids: std::collections::BTreeSet<Cid>,
    record_bytes: usize,
    /// Retained commits (oldest first). Compaction drops the front.
    commits: Vec<Commit>,
    /// Aligned 1:1 with `commits`: the blocks each commit introduced.
    log: Vec<CommitBlocks>,
    /// CID of the head commit, cached so each new commit's `prev` pointer
    /// costs nothing (compaction only drops from the front, never the head).
    head_cid: Option<Cid>,
    /// Revision of the newest commit a compaction pass dropped; deltas since
    /// revisions at or below it must fall back to a full fetch.
    compacted_through: Option<Tid>,
    /// Every MST node CID currently in the store (live nodes plus nodes
    /// superseded since the last compaction).
    stored_node_cids: std::collections::BTreeSet<Cid>,
    /// Node CIDs of the live tree as of the latest commit.
    current_node_cids: std::collections::BTreeSet<Cid>,
    clock: TidClock,
}

impl Repository {
    /// Create an empty repository for a DID over the default in-memory
    /// store. The signing key is derived from the DID plus provided key seed
    /// (the identity layer stores the same key in the DID document).
    pub fn new(did: Did, key_seed: &[u8]) -> Repository {
        Repository::with_store(did, key_seed, Box::new(MemStore::new()))
    }

    /// Create an empty repository over an explicit block store backend.
    pub fn with_store(did: Did, key_seed: &[u8], store: Box<dyn BlockStore>) -> Repository {
        let mut seed = did.to_string().into_bytes();
        seed.extend_from_slice(key_seed);
        Repository {
            signing_key: SigningKey::from_seed(&seed),
            clock: TidClock::new((seed.len() as u16) & 0x3ff),
            did,
            mst: Mst::new(),
            store,
            record_cids: std::collections::BTreeSet::new(),
            record_bytes: 0,
            commits: Vec::new(),
            log: Vec::new(),
            head_cid: None,
            compacted_through: None,
            stored_node_cids: std::collections::BTreeSet::new(),
            current_node_cids: std::collections::BTreeSet::new(),
        }
    }

    /// The repository owner.
    pub fn did(&self) -> &Did {
        &self.did
    }

    /// The signing key (held by the PDS on the user's behalf by default).
    pub fn signing_key(&self) -> &SigningKey {
        &self.signing_key
    }

    /// Latest commit, if any write has happened.
    pub fn head(&self) -> Option<&Commit> {
        self.commits.last()
    }

    /// The latest revision TID ("repo version" in `sync.listRepos`).
    pub fn rev(&self) -> Option<Tid> {
        self.head().map(|c| c.rev)
    }

    /// Retained commit history, oldest first (compaction may have dropped a
    /// prefix — see [`Repository::compacted_through`]).
    pub fn commits(&self) -> &[Commit] {
        &self.commits
    }

    /// Revision of the newest commit dropped by compaction, if any pass has
    /// run. Deltas since revisions at or below it error with
    /// [`AtError::RevisionCompacted`].
    pub fn compacted_through(&self) -> Option<Tid> {
        self.compacted_through
    }

    /// Number of live records.
    pub fn record_count(&self) -> usize {
        self.mst.len()
    }

    /// Total size of all stored record blocks in bytes (live and
    /// historical).
    pub fn store_size(&self) -> usize {
        self.record_bytes
    }

    /// Residency/spill statistics of the backing block store (records and
    /// MST nodes combined).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Fetch a record by collection and rkey.
    pub fn get_record(&self, collection: &Nsid, rkey: &str) -> Option<Record> {
        let key = format!("{collection}/{rkey}");
        let cid = self.mst.get(&key)?;
        let bytes = self.store.get(cid)?;
        Record::from_cbor(&bytes).ok()
    }

    /// Fetch a raw block by CID (owned: a disk-backed store may page it in).
    pub fn get_block(&self, cid: &Cid) -> Option<Vec<u8>> {
        self.store.get(cid)
    }

    /// List `(rkey, record)` pairs of a collection, in rkey order.
    pub fn list_collection(&self, collection: &Nsid) -> Vec<(String, Record)> {
        self.mst
            .iter_collection(collection.as_str())
            .filter_map(|(key, cid)| {
                let rkey = key.rsplit('/').next()?.to_string();
                let record = Record::from_cbor(&self.store.get(cid)?).ok()?;
                Some((rkey, record))
            })
            .collect()
    }

    /// Iterate every live record as `(collection, rkey, record)`.
    pub fn all_records(&self) -> Vec<(Nsid, String, Record)> {
        self.mst
            .iter()
            .filter_map(|(key, cid)| {
                let (collection, rkey) = key.split_once('/')?;
                let record = Record::from_cbor(&self.store.get(cid)?).ok()?;
                Some((Nsid::parse(collection).ok()?, rkey.to_string(), record))
            })
            .collect()
    }

    /// Apply one write, recording any freshly inserted block in
    /// `fresh_blocks` so a failed batch can roll the store back, and the
    /// key's pre-batch value in `touched` so the batch's net record ops can
    /// be derived (and the index restored on error) without snapshotting the
    /// whole tree.
    fn apply_one_write(
        &mut self,
        write: &Write,
        fresh_blocks: &mut Vec<Cid>,
        bytes_written: &mut usize,
        touched: &mut BTreeMap<String, (Option<Cid>, Option<Cid>)>,
    ) -> Result<()> {
        match write {
            Write::Create {
                collection,
                rkey,
                record,
            } => {
                let key = format!("{collection}/{rkey}");
                if self.mst.contains(&key) {
                    return Err(AtError::RepoError(format!("record exists: {key}")));
                }
                let bytes = record.to_cbor();
                let cid = Cid::for_cbor(&bytes);
                *bytes_written += bytes.len();
                let len = bytes.len();
                if self.store.put(cid, bytes) {
                    fresh_blocks.push(cid);
                    self.record_cids.insert(cid);
                    self.record_bytes += len;
                }
                let initial = self.mst.get(&key).copied();
                self.mst.insert(&key, cid)?;
                touched.entry(key).or_insert((initial, initial)).1 = Some(cid);
            }
            Write::Update {
                collection,
                rkey,
                record,
            } => {
                let key = format!("{collection}/{rkey}");
                if !self.mst.contains(&key) {
                    return Err(AtError::RepoError(format!("record missing: {key}")));
                }
                let bytes = record.to_cbor();
                let cid = Cid::for_cbor(&bytes);
                *bytes_written += bytes.len();
                let len = bytes.len();
                if self.store.put(cid, bytes) {
                    fresh_blocks.push(cid);
                    self.record_cids.insert(cid);
                    self.record_bytes += len;
                }
                let initial = self.mst.get(&key).copied();
                self.mst.insert(&key, cid)?;
                touched.entry(key).or_insert((initial, initial)).1 = Some(cid);
            }
            Write::Delete { collection, rkey } => {
                let key = format!("{collection}/{rkey}");
                let initial = self.mst.get(&key).copied();
                if self.mst.remove(&key).is_none() {
                    return Err(AtError::RepoError(format!("record missing: {key}")));
                }
                touched.entry(key).or_insert((initial, initial)).1 = None;
            }
        }
        Ok(())
    }

    /// Apply a batch of writes, producing a new signed commit.
    pub fn apply_writes(&mut self, writes: &[Write], now: Datetime) -> Result<CommitResult> {
        if writes.is_empty() {
            return Err(AtError::RepoError("empty write batch".into()));
        }
        let mut bytes_written = 0usize;
        let mut fresh_blocks: Vec<Cid> = Vec::new();
        // Net per-key change across the batch: key → (value before the
        // batch, value now). Tracking only the touched keys replaces the
        // old snapshot-the-tree-then-diff scheme, which cloned every key on
        // every commit; the ordered map keeps the derived ops key-sorted
        // exactly as `Mst::diff` reported them.
        let mut touched: BTreeMap<String, (Option<Cid>, Option<Cid>)> = BTreeMap::new();
        for write in writes {
            if let Err(err) =
                self.apply_one_write(write, &mut fresh_blocks, &mut bytes_written, &mut touched)
            {
                // Atomic batches: restore the index and drop the blocks this
                // batch introduced, so the store holds exactly the blocks
                // the commit log accounts for (no orphans — pinned by the
                // CountingStore test below).
                for (key, (initial, _)) in &touched {
                    match initial {
                        Some(cid) => {
                            let _ = self.mst.insert(key, *cid);
                        }
                        None => {
                            self.mst.remove(key);
                        }
                    }
                }
                for cid in &fresh_blocks {
                    self.record_bytes -= self.store.delete(cid);
                    self.record_cids.remove(cid);
                }
                return Err(err);
            }
        }
        let ops: Vec<RecordOp> = touched
            .iter()
            .filter_map(|(key, (initial, current))| match (initial, current) {
                (None, Some(cid)) => Some(RecordOp {
                    action: WriteAction::Create,
                    key: key.clone(),
                    cid: Some(*cid),
                }),
                (Some(old), Some(new)) if old != new => Some(RecordOp {
                    action: WriteAction::Update,
                    key: key.clone(),
                    cid: Some(*new),
                }),
                (Some(_), None) => Some(RecordOp {
                    action: WriteAction::Delete,
                    key: key.clone(),
                    cid: None,
                }),
                _ => None,
            })
            .collect();

        let rev = self.clock.next(now);
        // One materialisation serves both the commit's `data` pointer and
        // the per-commit node log: nodes not live before this commit are the
        // structural blocks a `getRepo(since)` delta must carry.
        let (data, nodes) = self.mst.root_and_blocks();
        let mut node_cids = Vec::new();
        let mut live_nodes = std::collections::BTreeSet::new();
        for node in nodes {
            live_nodes.insert(node.cid);
            if !self.current_node_cids.contains(&node.cid) {
                node_cids.push(node.cid);
                self.store.put(node.cid, node.bytes);
                self.stored_node_cids.insert(node.cid);
            }
        }
        let removed_node_cids: Vec<Cid> = self
            .current_node_cids
            .difference(&live_nodes)
            .copied()
            .collect();
        self.current_node_cids = live_nodes;
        let mut commit = Commit {
            did: self.did.clone(),
            version: 3,
            data,
            rev,
            prev: self.head_cid,
            sig: Signature([0u8; 32]),
        };
        commit.sig = self.signing_key.sign(&commit.unsigned_bytes());
        // Account for the MST root node and commit block; one encoding
        // serves both the byte count and the commit CID.
        let commit_bytes = commit.to_cbor();
        bytes_written += commit_bytes.len();
        let commit_cid = Cid::for_cbor(&commit_bytes);
        self.head_cid = Some(commit_cid);
        self.commits.push(commit.clone());
        self.log.push(CommitBlocks {
            record_cids: fresh_blocks,
            node_cids,
            removed_node_cids,
        });
        Ok(CommitResult {
            commit,
            commit_cid,
            ops,
            bytes_written,
        })
    }

    /// Convenience: create a record keyed by a fresh TID.
    pub fn create_record(
        &mut self,
        collection: Nsid,
        record: Record,
        now: Datetime,
    ) -> Result<(String, CommitResult)> {
        let rkey = self.clock.next(now).to_string();
        let result = self.apply_writes(
            &[Write::Create {
                collection,
                rkey: rkey.clone(),
                record,
            }],
            now,
        )?;
        Ok((rkey, result))
    }

    /// Export the full repository as a CAR-like archive: header + every
    /// retained block (commits, MST nodes, records). Used by
    /// `com.atproto.sync.getRepo`. Commits and record versions dropped by a
    /// compaction pass are gone from full exports too.
    pub fn export_car(&self) -> Vec<u8> {
        let mut blocks: Vec<(Cid, Vec<u8>)> = Vec::new();
        for commit in &self.commits {
            let bytes = commit.to_cbor();
            blocks.push((Cid::for_cbor(&bytes), bytes));
        }
        for node in self.mst.blocks() {
            blocks.push((node.cid, node.bytes));
        }
        for cid in &self.record_cids {
            if let Some(bytes) = self.store.get(cid) {
                blocks.push((*cid, bytes));
            }
        }
        let roots: Vec<Cid> = self.head_cid.into_iter().collect();
        encode_car(&roots, blocks.iter().map(|(c, b)| (*c, b.as_slice())), None)
    }

    /// `com.atproto.sync.getRepo(did, since=rev)`: export only what a
    /// consumer synced to `since` is missing — the commits after `since`
    /// ([`DeltaScope::Records`] trims this to the head commit alone, which
    /// is all a decoded-record consumer verifies), the **net** MST node
    /// difference between the live tree and the tree at `since`
    /// (reconstructed by replaying the per-commit add/remove log backwards,
    /// so transient nodes that appeared and vanished between the two
    /// snapshots never travel; [`DeltaScope::Full`] only), and every record
    /// block written after `since` (including intermediate versions, which
    /// full exports also retain). A [`DeltaScope::Full`] delta applied to a
    /// full archive at `since` therefore yields a superset of a fresh full
    /// export: commit chain, live tree and record store all intact.
    ///
    /// Errors when `since` is not a revision of this repository (a rewound
    /// or replaced repo, or a revision predating a takedown) — or, as
    /// [`AtError::RevisionCompacted`], when a compaction pass dropped it
    /// from the delta-serving window: either way the caller must fall back
    /// to a full [`Repository::export_car`] fetch. A `since` equal to the
    /// head revision yields an empty delta (header only).
    pub fn export_car_since(&self, since: &Tid, scope: DeltaScope) -> Result<Vec<u8>> {
        let head = self
            .head()
            .ok_or_else(|| AtError::RepoError("repository has no commits".into()))?;
        let head_cid = self.head_cid.expect("head commit implies cached head CID");
        let index = self
            .commits
            .binary_search_by(|c| c.rev.cmp(since))
            .map_err(|_| match self.compacted_through {
                // Any revision at or below the compaction floor is gone from
                // the window; a revision above it was simply never ours.
                Some(floor) if *since <= floor => AtError::RevisionCompacted(format!(
                    "revision {since} of {} left the delta window (compacted through {floor})",
                    self.did
                )),
                _ => AtError::RepoError(format!(
                    "unknown revision {since} for {}: full fetch required",
                    self.did
                )),
            })?;
        let mut blocks: BTreeMap<Cid, Vec<u8>> = BTreeMap::new();
        if index + 1 < self.commits.len() {
            blocks.insert(head_cid, head.to_cbor());
        }
        if scope == DeltaScope::Full {
            // The intermediate commits too, so the merged archive's `prev`
            // chain never dangles.
            for commit in &self.commits[index + 1..] {
                let bytes = commit.to_cbor();
                blocks.insert(Cid::for_cbor(&bytes), bytes);
            }
            // Node set at `since`, by backward replay of the per-commit
            // churn log — O(churn), never a tree rebuild.
            let mut nodes_at_since = self.current_node_cids.clone();
            for entry in self.log[index + 1..].iter().rev() {
                for cid in &entry.node_cids {
                    nodes_at_since.remove(cid);
                }
                for cid in &entry.removed_node_cids {
                    nodes_at_since.insert(*cid);
                }
            }
            for cid in self.current_node_cids.difference(&nodes_at_since) {
                if let Some(bytes) = self.store.get(cid) {
                    blocks.insert(*cid, bytes);
                }
            }
        }
        for entry in &self.log[index + 1..] {
            for cid in &entry.record_cids {
                // Blocks purged by a garbage collection are skipped — the
                // full export no longer carries them either.
                if let Some(bytes) = self.store.get(cid) {
                    blocks.insert(*cid, bytes);
                }
            }
        }
        Ok(encode_car(
            &[head_cid],
            blocks.iter().map(|(c, b)| (*c, b.as_slice())),
            Some(since),
        ))
    }

    /// Reassemble a full archive from a previously fetched CAR plus a delta
    /// produced by [`Repository::export_car_since`]. Every block is verified
    /// against its CID during parsing; on top of that the merged store must
    /// contain the delta's head commit, that commit's MST root node, and the
    /// head revision must advance past the base's — otherwise the delta is
    /// rejected and the caller should fall back to a full fetch.
    pub fn apply_delta(base_car: &[u8], delta_car: &[u8]) -> Result<Vec<u8>> {
        let (base_roots, mut blocks) = Repository::parse_car(base_car)?;
        let (delta_roots, delta_blocks) = Repository::parse_car(delta_car)?;
        let root = delta_roots
            .first()
            .copied()
            .ok_or_else(|| AtError::RepoError("delta CAR has no root".into()))?;
        let base_rev = base_roots
            .first()
            .and_then(|r| blocks.get(r))
            .map(|bytes| commit_summary(bytes))
            .transpose()?
            .map(|(rev, _)| rev);
        blocks.extend(delta_blocks);
        let commit_bytes = blocks
            .get(&root)
            .ok_or_else(|| AtError::RepoError("delta head commit block missing".into()))?;
        let (rev, data) = commit_summary(commit_bytes)?;
        if let Some(base_rev) = base_rev {
            if rev < base_rev {
                return Err(AtError::RepoError(format!(
                    "delta head revision {rev} rewinds past base {base_rev}"
                )));
            }
        }
        if !blocks.contains_key(&data) {
            return Err(AtError::RepoError(
                "delta MST root block missing from merged archive".into(),
            ));
        }
        Ok(encode_car(
            &delta_roots,
            blocks.iter().map(|(c, b)| (*c, b.as_slice())),
            None,
        ))
    }

    /// Parse a CAR archive back into `(roots, blocks)`.
    pub fn parse_car(bytes: &[u8]) -> Result<ParsedCar> {
        let mut pos = 0usize;
        let (header_len, read) = read_varint(&bytes[pos..])?;
        pos += read;
        let header_end = pos + header_len as usize;
        if header_end > bytes.len() {
            return Err(AtError::RepoError("truncated CAR header".into()));
        }
        let header = cbor::decode(&bytes[pos..header_end])?;
        pos = header_end;
        let roots = header
            .get("roots")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_link)
            .copied()
            .collect();
        let mut blocks = BTreeMap::new();
        while pos < bytes.len() {
            let (len, read) = read_varint(&bytes[pos..])?;
            pos += read;
            let end = pos + len as usize;
            if end > bytes.len() || len < 36 {
                return Err(AtError::RepoError("truncated CAR block".into()));
            }
            let cid = Cid::from_bytes(&bytes[pos..pos + 36])?;
            let data = bytes[pos + 36..end].to_vec();
            if Cid::for_cbor(&data) != cid && Cid::for_raw(&data) != cid {
                return Err(AtError::RepoError(format!(
                    "block does not match CID {cid}"
                )));
            }
            blocks.insert(cid, data);
            pos = end;
        }
        Ok((roots, blocks))
    }

    /// Drop historical blocks that are no longer reachable from the live MST
    /// (models an "infrastructure takedown" / GDPR purge). Returns the number
    /// of bytes reclaimed.
    pub fn garbage_collect(&mut self) -> usize {
        let live: std::collections::BTreeSet<Cid> = self.mst.iter().map(|(_, c)| *c).collect();
        let before = self.record_bytes;
        let victims: Vec<Cid> = self
            .record_cids
            .iter()
            .filter(|cid| !live.contains(cid))
            .copied()
            .collect();
        for cid in victims {
            self.record_bytes -= self.store.delete(&cid);
            self.record_cids.remove(&cid);
        }
        before - self.record_bytes
    }

    /// The compaction pass: garbage-collect everything that aged out of the
    /// delta-serving window ending at `cutoff`.
    ///
    /// * **MST nodes** — every node block superseded by the live tree is
    ///   deleted unconditionally: deltas only ever ship *current* nodes (the
    ///   per-commit churn log reconstructs historical node sets without
    ///   needing their bytes), so stale nodes serve no retained revision.
    /// * **Commits + log entries** — commits with `rev < cutoff` leave the
    ///   window (the head commit is always retained). Subsequent
    ///   [`Repository::export_car_since`] calls for a dropped revision fail
    ///   with [`AtError::RevisionCompacted`] instead of silently serving a
    ///   wrong delta.
    /// * **Records** — record blocks introduced by dropped commits that are
    ///   neither live in the MST nor re-introduced by a retained commit are
    ///   deleted (old versions past the window).
    ///
    /// Idempotent: a second pass with the same cutoff reclaims nothing.
    pub fn compact_before(&mut self, cutoff: &Tid) -> CompactionStats {
        let mut stats = CompactionStats::default();
        // Stale node GC (cutoff-independent, see above).
        let stale: Vec<Cid> = self
            .stored_node_cids
            .difference(&self.current_node_cids)
            .copied()
            .collect();
        for cid in stale {
            stats.bytes_reclaimed += self.store.delete(&cid);
            stats.nodes_dropped += 1;
            self.stored_node_cids.remove(&cid);
        }
        // Commit-window compaction.
        if self.commits.len() > 1 {
            let floor = self
                .commits
                .partition_point(|c| c.rev < *cutoff)
                .min(self.commits.len() - 1);
            if floor > 0 {
                let live: std::collections::BTreeSet<Cid> =
                    self.mst.iter().map(|(_, c)| *c).collect();
                let retained: std::collections::BTreeSet<Cid> = self.log[floor..]
                    .iter()
                    .flat_map(|e| e.record_cids.iter().copied())
                    .collect();
                let dropped: Vec<Cid> = self.log[..floor]
                    .iter()
                    .flat_map(|e| e.record_cids.iter().copied())
                    .collect();
                for cid in dropped {
                    if !live.contains(&cid)
                        && !retained.contains(&cid)
                        && self.record_cids.remove(&cid)
                    {
                        let removed = self.store.delete(&cid);
                        self.record_bytes -= removed;
                        stats.bytes_reclaimed += removed;
                        stats.records_dropped += 1;
                    }
                }
                let last_dropped = self.commits[floor - 1].rev;
                self.compacted_through = Some(match self.compacted_through {
                    Some(prev) => prev.max(last_dropped),
                    None => last_dropped,
                });
                self.commits.drain(..floor);
                self.log.drain(..floor);
                stats.commits_dropped = floor;
            }
        }
        stats
    }
}

/// Serialise a CAR archive: varint-framed header (`version`, `roots`, and —
/// for deltas — the `since` revision) followed by varint-framed
/// `CID ‖ bytes` blocks.
fn encode_car<'a>(
    roots: &[Cid],
    blocks: impl Iterator<Item = (Cid, &'a [u8])>,
    since: Option<&Tid>,
) -> Vec<u8> {
    let mut fields = vec![
        ("version".to_string(), Value::Int(1)),
        (
            "roots".to_string(),
            Value::Array(roots.iter().map(|c| Value::Link(*c)).collect()),
        ),
    ];
    if let Some(since) = since {
        fields.push(("since".to_string(), Value::text(since.to_string())));
    }
    let header_bytes = cbor::encode(&Value::map(fields));
    let mut out = Vec::new();
    write_varint(header_bytes.len() as u64, &mut out);
    out.extend_from_slice(&header_bytes);
    for (cid, bytes) in blocks {
        let cid_bytes = cid.to_bytes();
        write_varint((cid_bytes.len() + bytes.len()) as u64, &mut out);
        out.extend_from_slice(&cid_bytes);
        out.extend_from_slice(bytes);
    }
    out
}

/// Decode the `(rev, data)` summary of an encoded commit block, without
/// needing the full [`Commit`] struct (delta consumers hold raw blocks).
pub fn commit_summary(bytes: &[u8]) -> Result<(Tid, Cid)> {
    let value = cbor::decode(bytes)?;
    let rev = value
        .get("rev")
        .and_then(Value::as_text)
        .ok_or_else(|| AtError::RepoError("commit block missing rev".into()))?;
    let data = value
        .get("data")
        .and_then(Value::as_link)
        .ok_or_else(|| AtError::RepoError("commit block missing data".into()))?;
    Ok((Tid::parse(rev)?, *data))
}

fn write_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8]) -> Result<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        value |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
        if shift > 63 {
            return Err(AtError::RepoError("varint overflow".into()));
        }
    }
    Err(AtError::RepoError("truncated varint".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsid::known;
    use crate::record::PostRecord;

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 24, 9, 0, 0).unwrap()
    }

    fn post_nsid() -> Nsid {
        Nsid::parse(known::POST).unwrap()
    }

    fn new_repo(name: &str) -> Repository {
        Repository::new(Did::plc_from_seed(name.as_bytes()), b"network-secret")
    }

    fn post(text: &str) -> Record {
        Record::Post(PostRecord::simple(text, "en", now()))
    }

    #[test]
    fn create_get_update_delete_cycle() {
        let mut repo = new_repo("alice");
        assert!(repo.head().is_none());
        let (rkey, result) = repo
            .create_record(post_nsid(), post("first"), now())
            .unwrap();
        assert_eq!(result.ops.len(), 1);
        assert_eq!(result.ops[0].action, WriteAction::Create);
        assert_eq!(result.ops[0].collection(), known::POST);
        assert_eq!(repo.record_count(), 1);
        assert_eq!(repo.get_record(&post_nsid(), &rkey), Some(post("first")));

        let update = repo
            .apply_writes(
                &[Write::Update {
                    collection: post_nsid(),
                    rkey: rkey.clone(),
                    record: post("edited"),
                }],
                now().plus_seconds(10),
            )
            .unwrap();
        assert_eq!(update.ops[0].action, WriteAction::Update);
        assert_eq!(repo.get_record(&post_nsid(), &rkey), Some(post("edited")));

        let delete = repo
            .apply_writes(
                &[Write::Delete {
                    collection: post_nsid(),
                    rkey: rkey.clone(),
                }],
                now().plus_seconds(20),
            )
            .unwrap();
        assert_eq!(delete.ops[0].action, WriteAction::Delete);
        assert!(repo.get_record(&post_nsid(), &rkey).is_none());
        assert_eq!(repo.record_count(), 0);
        assert_eq!(repo.commits().len(), 3);
    }

    #[test]
    fn commit_chain_links_and_revs_increase() {
        let mut repo = new_repo("bob");
        for i in 0..5 {
            repo.create_record(post_nsid(), post(&format!("post {i}")), now())
                .unwrap();
        }
        let commits = repo.commits();
        assert_eq!(commits.len(), 5);
        assert!(commits[0].prev.is_none());
        for i in 1..commits.len() {
            assert_eq!(commits[i].prev, Some(commits[i - 1].cid()));
            assert!(commits[i].rev > commits[i - 1].rev);
        }
    }

    #[test]
    fn commits_are_signed_and_verifiable() {
        let mut repo = new_repo("carol");
        repo.create_record(post_nsid(), post("signed"), now())
            .unwrap();
        let head = repo.head().unwrap().clone();
        assert!(head.verify(repo.signing_key()));
        // A different key does not verify.
        let other = SigningKey::from_seed(b"other");
        assert!(!head.verify(&other));
        // Tampering with the data pointer breaks verification.
        let mut tampered = head.clone();
        tampered.data = Cid::for_cbor(b"evil");
        assert!(!tampered.verify(repo.signing_key()));
    }

    #[test]
    fn rejects_conflicting_writes() {
        let mut repo = new_repo("dave");
        let (rkey, _) = repo.create_record(post_nsid(), post("x"), now()).unwrap();
        // Creating over an existing key fails and rolls back.
        let err = repo.apply_writes(
            &[Write::Create {
                collection: post_nsid(),
                rkey: rkey.clone(),
                record: post("y"),
            }],
            now(),
        );
        assert!(err.is_err());
        assert_eq!(repo.get_record(&post_nsid(), &rkey), Some(post("x")));
        // Updating or deleting a missing key fails.
        assert!(repo
            .apply_writes(
                &[Write::Update {
                    collection: post_nsid(),
                    rkey: "missing123".into(),
                    record: post("z"),
                }],
                now()
            )
            .is_err());
        assert!(repo
            .apply_writes(
                &[Write::Delete {
                    collection: post_nsid(),
                    rkey: "missing123".into(),
                }],
                now()
            )
            .is_err());
        // Empty batches are rejected.
        assert!(repo.apply_writes(&[], now()).is_err());
        assert_eq!(repo.commits().len(), 1);
    }

    #[test]
    fn list_collection_and_all_records() {
        let mut repo = new_repo("erin");
        repo.create_record(post_nsid(), post("a"), now()).unwrap();
        repo.create_record(post_nsid(), post("b"), now()).unwrap();
        repo.create_record(
            Nsid::parse(known::FOLLOW).unwrap(),
            Record::Follow(crate::record::FollowRecord {
                subject: Did::plc_from_seed(b"frank"),
                created_at: now(),
            }),
            now(),
        )
        .unwrap();
        assert_eq!(repo.list_collection(&post_nsid()).len(), 2);
        assert_eq!(
            repo.list_collection(&Nsid::parse(known::FOLLOW).unwrap())
                .len(),
            1
        );
        assert_eq!(repo.all_records().len(), 3);
    }

    #[test]
    fn car_export_roundtrip() {
        let mut repo = new_repo("grace");
        for i in 0..20 {
            repo.create_record(post_nsid(), post(&format!("post {i}")), now())
                .unwrap();
        }
        let car = repo.export_car();
        assert!(!car.is_empty());
        let (roots, blocks) = Repository::parse_car(&car).unwrap();
        assert_eq!(roots, vec![repo.head().unwrap().cid()]);
        // Every live record block is present and matches its CID.
        for (_, _, record) in repo.all_records() {
            let cid = Cid::for_cbor(&record.to_cbor());
            assert!(blocks.contains_key(&cid));
        }
        // The head commit block is present.
        assert!(blocks.contains_key(&roots[0]));
    }

    /// All blocks of a CAR that decode as records, in CID order — the view
    /// the §3 repositories dataset takes of an archive.
    fn decoded_records(car: &[u8]) -> Vec<Record> {
        let (_, blocks) = Repository::parse_car(car).unwrap();
        blocks
            .values()
            .filter_map(|b| Record::from_cbor(b).ok())
            .collect()
    }

    #[test]
    fn delta_since_head_is_empty() {
        let mut repo = new_repo("judy");
        repo.create_record(post_nsid(), post("only"), now())
            .unwrap();
        let head_rev = repo.rev().unwrap();
        let delta = repo.export_car_since(&head_rev, DeltaScope::Full).unwrap();
        let (roots, blocks) = Repository::parse_car(&delta).unwrap();
        assert_eq!(roots, vec![repo.head().unwrap().cid()]);
        assert!(blocks.is_empty(), "delta since head must carry no blocks");
    }

    #[test]
    fn delta_since_unknown_rev_errors_for_full_refetch() {
        let mut repo = new_repo("kate");
        repo.create_record(post_nsid(), post("x"), now()).unwrap();
        // A revision this repository never produced (e.g. the consumer's
        // state predates a repo rewind or replacement).
        let foreign = Tid::from_micros(1, 1);
        let err = repo
            .export_car_since(&foreign, DeltaScope::Full)
            .unwrap_err();
        assert!(err.to_string().contains("full fetch required"), "{err}");
        // An empty repository cannot serve deltas at all.
        let empty = new_repo("empty");
        assert!(empty.export_car_since(&foreign, DeltaScope::Full).is_err());
    }

    #[test]
    fn delta_applied_to_base_matches_full_export() {
        let mut repo = new_repo("liam");
        let mut rkeys = Vec::new();
        for i in 0..8 {
            let (rkey, _) = repo
                .create_record(post_nsid(), post(&format!("v0 {i}")), now())
                .unwrap();
            rkeys.push(rkey);
        }
        let base_rev = repo.rev().unwrap();
        let base_car = repo.export_car();

        // Update the same record twice (the intermediate version must still
        // reach the consumer: full exports carry every historical block),
        // delete one record and re-add under the same key, and create new
        // records.
        for text in ["edit one", "edit two"] {
            repo.apply_writes(
                &[Write::Update {
                    collection: post_nsid(),
                    rkey: rkeys[0].clone(),
                    record: post(text),
                }],
                now().plus_seconds(5),
            )
            .unwrap();
        }
        repo.apply_writes(
            &[Write::Delete {
                collection: post_nsid(),
                rkey: rkeys[1].clone(),
            }],
            now().plus_seconds(10),
        )
        .unwrap();
        repo.apply_writes(
            &[Write::Create {
                collection: post_nsid(),
                rkey: rkeys[1].clone(),
                record: post("readded"),
            }],
            now().plus_seconds(15),
        )
        .unwrap();
        repo.create_record(post_nsid(), post("brand new"), now().plus_seconds(20))
            .unwrap();

        let full_car = repo.export_car();
        let delta = repo.export_car_since(&base_rev, DeltaScope::Full).unwrap();
        assert!(
            delta.len() < full_car.len(),
            "delta ({}) must be smaller than the full export ({})",
            delta.len(),
            full_car.len()
        );
        let merged = Repository::apply_delta(&base_car, &delta).unwrap();
        // Same head, and the record view is byte-identical to a fresh full
        // fetch — including the intermediate "edit one" version.
        let (merged_roots, merged_blocks) = Repository::parse_car(&merged).unwrap();
        assert_eq!(merged_roots, vec![repo.head().unwrap().cid()]);
        assert_eq!(decoded_records(&merged), decoded_records(&full_car));
        assert!(decoded_records(&merged).contains(&post("edit one")));
        // The head commit and the whole live tree are reachable in the
        // merged store (deltas ship the net node difference; the base
        // supplied the unchanged nodes).
        let (rev, data) = commit_summary(merged_blocks.get(&merged_roots[0]).unwrap()).unwrap();
        assert_eq!(rev, repo.rev().unwrap());
        assert!(merged_blocks.contains_key(&data));
        // In fact the merged store covers everything a fresh full export
        // carries — commit chain included, so `prev` links never dangle.
        let (_, full_blocks) = Repository::parse_car(&full_car).unwrap();
        for cid in full_blocks.keys() {
            assert!(
                merged_blocks.contains_key(cid),
                "block {cid} missing from merged archive"
            );
        }
    }

    #[test]
    fn log_replay_delta_matches_the_reference_node_diff_walk() {
        // `export_car_since` derives its node section from the per-commit
        // add/remove log (O(churn)); `Mst::node_delta` is the reference
        // diff walk (O(n) tree builds). They must agree exactly.
        let mut repo = new_repo("pia");
        let mut rkeys = Vec::new();
        for i in 0..30 {
            let (rkey, _) = repo
                .create_record(post_nsid(), post(&format!("base {i}")), now())
                .unwrap();
            rkeys.push(rkey);
        }
        let since = repo.rev().unwrap();
        let base_mst = repo.mst.clone();
        // A week of churn: creates, an update, a delete + re-add.
        for i in 0..6 {
            repo.create_record(
                post_nsid(),
                post(&format!("new {i}")),
                now().plus_seconds(i),
            )
            .unwrap();
        }
        repo.apply_writes(
            &[Write::Update {
                collection: post_nsid(),
                rkey: rkeys[3].clone(),
                record: post("edited"),
            }],
            now().plus_seconds(10),
        )
        .unwrap();
        repo.apply_writes(
            &[Write::Delete {
                collection: post_nsid(),
                rkey: rkeys[4].clone(),
            }],
            now().plus_seconds(11),
        )
        .unwrap();
        repo.apply_writes(
            &[Write::Create {
                collection: post_nsid(),
                rkey: rkeys[4].clone(),
                record: post("readded"),
            }],
            now().plus_seconds(12),
        )
        .unwrap();

        let delta = repo.export_car_since(&since, DeltaScope::Full).unwrap();
        let (_, blocks) = Repository::parse_car(&delta).unwrap();
        let delta_nodes: std::collections::BTreeSet<Cid> = blocks
            .iter()
            .filter(|(_, bytes)| {
                Record::from_cbor(bytes).is_err() && commit_summary(bytes).is_err()
            })
            .map(|(cid, _)| *cid)
            .collect();
        let reference: std::collections::BTreeSet<Cid> = repo
            .mst
            .node_delta(&base_mst)
            .iter()
            .map(|n| n.cid)
            .collect();
        assert!(!reference.is_empty());
        assert_eq!(delta_nodes, reference);
    }

    #[test]
    fn chained_deltas_across_three_snapshots() {
        let mut repo = new_repo("mona");
        repo.create_record(post_nsid(), post("one"), now()).unwrap();
        let rev1 = repo.rev().unwrap();
        let car1 = repo.export_car();
        repo.create_record(post_nsid(), post("two"), now().plus_seconds(1))
            .unwrap();
        let rev2 = repo.rev().unwrap();
        let car2 = Repository::apply_delta(
            &car1,
            &repo.export_car_since(&rev1, DeltaScope::Full).unwrap(),
        )
        .unwrap();
        repo.create_record(post_nsid(), post("three"), now().plus_seconds(2))
            .unwrap();
        let car3 = Repository::apply_delta(
            &car2,
            &repo.export_car_since(&rev2, DeltaScope::Full).unwrap(),
        )
        .unwrap();
        assert_eq!(decoded_records(&car3), decoded_records(&repo.export_car()));
    }

    #[test]
    fn apply_delta_rejects_bad_deltas() {
        let mut repo = new_repo("nina");
        repo.create_record(post_nsid(), post("a"), now()).unwrap();
        let rev = repo.rev().unwrap();
        let base = repo.export_car();
        repo.create_record(post_nsid(), post("b"), now().plus_seconds(1))
            .unwrap();
        let delta = repo.export_car_since(&rev, DeltaScope::Full).unwrap();
        // Corrupted delta: block hash check fails during parsing.
        let mut corrupt = delta.clone();
        let idx = corrupt.len() - 3;
        corrupt[idx] ^= 0xff;
        assert!(Repository::apply_delta(&base, &corrupt).is_err());
        // A delta without roots is rejected.
        let empty_repo = new_repo("empty2");
        assert!(Repository::apply_delta(&base, &empty_repo.export_car()).is_err());
        // Applying a stale base's delta in the wrong direction (new base,
        // old head) is a rewind and is rejected.
        let newer_base = repo.export_car();
        let old_only = new_repo("nina"); // fresh: no commits
        assert!(old_only.export_car_since(&rev, DeltaScope::Full).is_err());
        let _ = newer_base;
    }

    #[test]
    fn failed_batches_leave_the_store_unchanged() {
        let mut repo = new_repo("olga");
        let (rkey, _) = repo
            .create_record(post_nsid(), post("keep"), now())
            .unwrap();
        let size_before = repo.store_size();
        // The first write of this batch inserts a fresh block, then the
        // second write fails: the whole batch must roll back, store
        // included, so the commit log stays exact.
        let err = repo.apply_writes(
            &[
                Write::Create {
                    collection: post_nsid(),
                    rkey: "fresh123".into(),
                    record: post("should vanish"),
                },
                Write::Create {
                    collection: post_nsid(),
                    rkey: rkey.clone(),
                    record: post("conflicts"),
                },
            ],
            now(),
        );
        assert!(err.is_err());
        assert_eq!(repo.store_size(), size_before);
        assert_eq!(repo.commits().len(), 1);
        let vanished = Cid::for_cbor(&post("should vanish").to_cbor());
        assert!(repo.get_block(&vanished).is_none());
    }

    #[test]
    fn failed_batches_leave_a_counted_store_byte_identical() {
        // Satellite regression: the rollback path must delete exactly the
        // blocks the failed batch put — no orphans — which the CountingStore
        // wrapper proves without peeking inside the repository.
        use crate::blockstore::{CountingStore, MemStore};
        let did = Did::plc_from_seed(b"counted");
        let (store, totals) = CountingStore::new(Box::new(MemStore::new()));
        let mut repo = Repository::with_store(did, b"network-secret", Box::new(store));
        let (rkey, _) = repo
            .create_record(post_nsid(), post("keep"), now())
            .unwrap();
        let car_before = repo.export_car();
        let size_before = repo.store_size();
        let puts_before = totals.puts();
        let deletes_before = totals.deletes();
        let bytes_put_before = totals.bytes_put();
        let bytes_deleted_before = totals.bytes_deleted();
        let err = repo.apply_writes(
            &[
                Write::Create {
                    collection: post_nsid(),
                    rkey: "fresh456".into(),
                    record: post("orphan candidate"),
                },
                Write::Create {
                    collection: post_nsid(),
                    rkey,
                    record: post("conflicts"),
                },
            ],
            now(),
        );
        assert!(err.is_err());
        // The batch really wrote before failing, and every write was undone.
        let puts = totals.puts() - puts_before;
        let deletes = totals.deletes() - deletes_before;
        assert!(puts >= 1, "the first write must have hit the store");
        assert_eq!(puts, deletes, "orphaned blocks left behind");
        assert_eq!(
            totals.bytes_put() - bytes_put_before,
            totals.bytes_deleted() - bytes_deleted_before,
            "rolled-back bytes must match the bytes written"
        );
        // And the store is byte-identical: the full export round-trips.
        assert_eq!(repo.export_car(), car_before);
        assert_eq!(repo.store_size(), size_before);
    }

    #[test]
    fn paged_store_repository_exports_identically_to_mem() {
        use crate::blockstore::StoreConfig;
        let did = Did::plc_from_seed(b"paged-repo");
        let mut mem = Repository::new(did.clone(), b"network-secret");
        let paged_config = StoreConfig::paged().page_size(256).resident_pages(1);
        let mut paged = Repository::with_store(did, b"network-secret", paged_config.build());
        for i in 0..40 {
            let t = now().plus_seconds(i);
            mem.create_record(post_nsid(), post(&format!("post {i}")), t)
                .unwrap();
            paged
                .create_record(post_nsid(), post(&format!("post {i}")), t)
                .unwrap();
        }
        let stats = paged.store_stats();
        assert!(stats.spilled_bytes > 0, "paged repo must spill: {stats:?}");
        assert!(stats.resident_bytes < mem.store_stats().resident_bytes);
        // Byte-identical exports, full and delta.
        assert_eq!(paged.export_car(), mem.export_car());
        let since = mem.commits()[10].rev;
        assert_eq!(
            paged.export_car_since(&since, DeltaScope::Full).unwrap(),
            mem.export_car_since(&since, DeltaScope::Full).unwrap()
        );
        assert_eq!(paged.all_records(), mem.all_records());
    }

    #[test]
    fn compaction_reclaims_nodes_and_aged_records() {
        let mut repo = new_repo("quinn");
        let mut rkeys = Vec::new();
        for i in 0..20 {
            let (rkey, _) = repo
                .create_record(post_nsid(), post(&format!("v{i}")), now().plus_seconds(i))
                .unwrap();
            rkeys.push(rkey);
        }
        // Replace a record twice: two unreachable historical versions.
        for (offset, text) in [(100, "edit a"), (101, "edit b")] {
            repo.apply_writes(
                &[Write::Update {
                    collection: post_nsid(),
                    rkey: rkeys[0].clone(),
                    record: post(text),
                }],
                now().plus_seconds(offset),
            )
            .unwrap();
        }
        let store_bytes_before = repo.store_stats().logical_bytes;
        let commits_before = repo.commits().len();
        let mid_rev = repo.commits()[commits_before - 2].rev;
        let head_rev = repo.rev().unwrap();
        let delta_before = repo.export_car_since(&mid_rev, DeltaScope::Full).unwrap();
        let expected_floor = repo.commits()[commits_before - 3].rev;

        // Compact everything older than the last two commits.
        let cutoff = mid_rev;
        let stats = repo.compact_before(&cutoff);
        assert!(stats.commits_dropped > 0);
        assert!(stats.nodes_dropped > 0, "stale nodes must be reclaimed");
        assert!(
            stats.records_dropped >= 1,
            "the superseded original version must be reclaimed: {stats:?}"
        );
        assert!(repo.store_stats().logical_bytes < store_bytes_before);
        assert_eq!(repo.commits().len(), commits_before - stats.commits_dropped);
        assert_eq!(repo.compacted_through(), Some(expected_floor));

        // Retained revisions still serve byte-identical deltas.
        assert_eq!(
            repo.export_car_since(&mid_rev, DeltaScope::Full).unwrap(),
            delta_before
        );
        let empty = repo.export_car_since(&head_rev, DeltaScope::Full).unwrap();
        let (_, blocks) = Repository::parse_car(&empty).unwrap();
        assert!(blocks.is_empty());

        // Compacted revisions fail loudly with the dedicated error, so the
        // caller falls back to a full fetch *visibly*.
        let old_rev = rkeys[1].parse::<Tid>().unwrap();
        let err = repo
            .export_car_since(&old_rev, DeltaScope::Full)
            .unwrap_err();
        assert!(
            matches!(err, AtError::RevisionCompacted(_)),
            "expected RevisionCompacted, got {err}"
        );
        // A foreign revision *newer* than the floor is still a plain
        // unknown-revision error.
        let foreign = Tid::from_micros(u64::MAX >> 12, 1);
        assert!(matches!(
            repo.export_car_since(&foreign, DeltaScope::Full)
                .unwrap_err(),
            AtError::RepoError(_)
        ));
        // The full export still parses and carries the live tree.
        let (roots, full_blocks) = Repository::parse_car(&repo.export_car()).unwrap();
        let (_, data) = commit_summary(full_blocks.get(&roots[0]).unwrap()).unwrap();
        assert!(full_blocks.contains_key(&data));
        // Idempotent: a second pass reclaims nothing.
        assert_eq!(repo.compact_before(&cutoff), CompactionStats::default());
    }

    #[test]
    fn compaction_keeps_live_old_records() {
        // A record created long ago but still live must survive compaction
        // and still reach consumers through full exports.
        let mut repo = new_repo("rosa");
        repo.create_record(post_nsid(), post("ancient but live"), now())
            .unwrap();
        for i in 0..10 {
            repo.create_record(
                post_nsid(),
                post(&format!("later {i}")),
                now().plus_days(30 + i),
            )
            .unwrap();
        }
        let cutoff = repo.commits()[8].rev;
        let stats = repo.compact_before(&cutoff);
        assert!(stats.commits_dropped > 0);
        assert_eq!(stats.records_dropped, 0, "live records must be retained");
        let records = decoded_records(&repo.export_car());
        assert!(records.contains(&post("ancient but live")));
        assert_eq!(records.len(), 11);
    }

    #[test]
    fn parse_car_rejects_corruption() {
        let mut repo = new_repo("henry");
        repo.create_record(post_nsid(), post("x"), now()).unwrap();
        let mut car = repo.export_car();
        // Flip a byte near the end (inside some block payload).
        let idx = car.len() - 3;
        car[idx] ^= 0xff;
        assert!(Repository::parse_car(&car).is_err());
        assert!(Repository::parse_car(&[]).is_err());
    }

    #[test]
    fn deleted_blocks_persist_until_gc() {
        let mut repo = new_repo("iris");
        let (rkey, _) = repo
            .create_record(post_nsid(), post("to be deleted"), now())
            .unwrap();
        let record_cid = Cid::for_cbor(&post("to be deleted").to_cbor());
        repo.apply_writes(
            &[Write::Delete {
                collection: post_nsid(),
                rkey,
            }],
            now(),
        )
        .unwrap();
        // The paper notes deleted content remains recoverable from the repo.
        assert!(repo.get_block(&record_cid).is_some());
        let reclaimed = repo.garbage_collect();
        assert!(reclaimed > 0);
        assert!(repo.get_block(&record_cid).is_none());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX / 2,
        ] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let (back, read) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(read, buf.len());
        }
        assert!(read_varint(&[]).is_err());
        assert!(read_varint(&[0x80]).is_err());
    }
}
