//! User data repositories.
//!
//! A repository is the signed, content-addressed store of all of a user's
//! public records (§2, "User Data Repositories"). Updates happen through
//! *commits*: each commit points at the new MST root, carries a monotonically
//! increasing revision TID and is signed with a key from the owner's DID
//! document. The git-like structure retains previous record versions inside
//! the block store, which the paper's discussion section flags as a GDPR
//! concern — we model that by keeping deleted blocks until an explicit
//! garbage-collection call.

use crate::cbor::{self, Value};
use crate::cid::Cid;
use crate::crypto::{Signature, SigningKey};
use crate::datetime::Datetime;
use crate::did::Did;
use crate::error::{AtError, Result};
use crate::mst::{Mst, MstDiffOp};
use crate::nsid::Nsid;
use crate::record::Record;
use crate::tid::{Tid, TidClock};
use std::collections::BTreeMap;

/// A signed repository commit.
#[derive(Debug, Clone, PartialEq)]
pub struct Commit {
    /// The repository owner.
    pub did: Did,
    /// Commit format version (3 in the live network).
    pub version: u8,
    /// MST root CID after this commit.
    pub data: Cid,
    /// Revision TID, strictly increasing per repository.
    pub rev: Tid,
    /// CID of the previous commit, if any.
    pub prev: Option<Cid>,
    /// Signature over the unsigned commit bytes.
    pub sig: Signature,
}

impl Commit {
    /// The commit's own CID (hash of its signed encoding).
    pub fn cid(&self) -> Cid {
        Cid::for_cbor(&self.to_cbor())
    }

    /// The bytes that are signed (everything except the signature).
    pub fn unsigned_bytes(&self) -> Vec<u8> {
        let mut fields = vec![
            ("did".to_string(), Value::text(self.did.to_string())),
            ("version".to_string(), Value::Int(self.version as i64)),
            ("data".to_string(), Value::Link(self.data)),
            ("rev".to_string(), Value::text(self.rev.to_string())),
        ];
        fields.push((
            "prev".to_string(),
            match self.prev {
                Some(c) => Value::Link(c),
                None => Value::Null,
            },
        ));
        cbor::encode(&Value::map(fields))
    }

    /// Full signed encoding.
    pub fn to_cbor(&self) -> Vec<u8> {
        let mut fields: BTreeMap<String, Value> = match cbor::decode(&self.unsigned_bytes()) {
            Ok(Value::Map(m)) => m,
            _ => unreachable!("unsigned bytes are a map"),
        };
        fields.insert("sig".to_string(), Value::Bytes(self.sig.0.to_vec()));
        cbor::encode(&Value::Map(fields))
    }

    /// Verify the signature with the owner's signing key.
    pub fn verify(&self, key: &SigningKey) -> bool {
        crate::crypto::verify(key, &self.unsigned_bytes(), &self.sig)
    }
}

/// The kind of write applied to a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteAction {
    /// A new record was created.
    Create,
    /// An existing record was replaced.
    Update,
    /// A record was deleted.
    Delete,
}

impl WriteAction {
    /// Stable string form used in firehose frames.
    pub fn as_str(&self) -> &'static str {
        match self {
            WriteAction::Create => "create",
            WriteAction::Update => "update",
            WriteAction::Delete => "delete",
        }
    }
}

/// A single record operation inside a commit.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordOp {
    /// Create, update or delete.
    pub action: WriteAction,
    /// Repository key `<collection>/<rkey>`.
    pub key: String,
    /// CID of the new record block (absent for deletes).
    pub cid: Option<Cid>,
}

impl RecordOp {
    /// The collection component of the key.
    pub fn collection(&self) -> &str {
        self.key.split('/').next().unwrap_or(&self.key)
    }

    /// The rkey component of the key.
    pub fn rkey(&self) -> &str {
        self.key.split('/').nth(1).unwrap_or("")
    }
}

/// A write request handed to [`Repository::apply_writes`].
#[derive(Debug, Clone, PartialEq)]
pub enum Write {
    /// Create a new record under a collection and rkey.
    Create {
        /// Collection NSID.
        collection: Nsid,
        /// Record key.
        rkey: String,
        /// The record.
        record: Record,
    },
    /// Replace an existing record.
    Update {
        /// Collection NSID.
        collection: Nsid,
        /// Record key.
        rkey: String,
        /// The new record contents.
        record: Record,
    },
    /// Delete an existing record.
    Delete {
        /// Collection NSID.
        collection: Nsid,
        /// Record key.
        rkey: String,
    },
}

/// The outcome of applying a batch of writes: the new commit plus the record
/// operations, ready to be emitted on the firehose.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitResult {
    /// The newly created commit.
    pub commit: Commit,
    /// The operations included in it.
    pub ops: Vec<RecordOp>,
    /// Approximate number of bytes of new blocks written.
    pub bytes_written: usize,
}

/// A parsed CAR archive: the root CIDs and the block store.
pub type ParsedCar = (Vec<Cid>, BTreeMap<Cid, Vec<u8>>);

/// A user repository: block store + MST index + commit chain.
#[derive(Debug, Clone)]
pub struct Repository {
    did: Did,
    signing_key: SigningKey,
    mst: Mst,
    blocks: BTreeMap<Cid, Vec<u8>>,
    commits: Vec<Commit>,
    clock: TidClock,
}

impl Repository {
    /// Create an empty repository for a DID. The signing key is derived from
    /// the DID plus provided key seed (the identity layer stores the same key
    /// in the DID document).
    pub fn new(did: Did, key_seed: &[u8]) -> Repository {
        let mut seed = did.to_string().into_bytes();
        seed.extend_from_slice(key_seed);
        Repository {
            signing_key: SigningKey::from_seed(&seed),
            clock: TidClock::new((seed.len() as u16) & 0x3ff),
            did,
            mst: Mst::new(),
            blocks: BTreeMap::new(),
            commits: Vec::new(),
        }
    }

    /// The repository owner.
    pub fn did(&self) -> &Did {
        &self.did
    }

    /// The signing key (held by the PDS on the user's behalf by default).
    pub fn signing_key(&self) -> &SigningKey {
        &self.signing_key
    }

    /// Latest commit, if any write has happened.
    pub fn head(&self) -> Option<&Commit> {
        self.commits.last()
    }

    /// The latest revision TID ("repo version" in `sync.listRepos`).
    pub fn rev(&self) -> Option<Tid> {
        self.head().map(|c| c.rev)
    }

    /// Full commit history, oldest first.
    pub fn commits(&self) -> &[Commit] {
        &self.commits
    }

    /// Number of live records.
    pub fn record_count(&self) -> usize {
        self.mst.len()
    }

    /// Total size of all stored blocks in bytes (live and historical).
    pub fn store_size(&self) -> usize {
        self.blocks.values().map(Vec::len).sum()
    }

    /// Fetch a record by collection and rkey.
    pub fn get_record(&self, collection: &Nsid, rkey: &str) -> Option<Record> {
        let key = format!("{collection}/{rkey}");
        let cid = self.mst.get(&key)?;
        let bytes = self.blocks.get(cid)?;
        Record::from_cbor(bytes).ok()
    }

    /// Fetch a raw block by CID.
    pub fn get_block(&self, cid: &Cid) -> Option<&[u8]> {
        self.blocks.get(cid).map(Vec::as_slice)
    }

    /// List `(rkey, record)` pairs of a collection, in rkey order.
    pub fn list_collection(&self, collection: &Nsid) -> Vec<(String, Record)> {
        self.mst
            .iter_collection(collection.as_str())
            .filter_map(|(key, cid)| {
                let rkey = key.rsplit('/').next()?.to_string();
                let record = Record::from_cbor(self.blocks.get(cid)?).ok()?;
                Some((rkey, record))
            })
            .collect()
    }

    /// Iterate every live record as `(collection, rkey, record)`.
    pub fn all_records(&self) -> Vec<(Nsid, String, Record)> {
        self.mst
            .iter()
            .filter_map(|(key, cid)| {
                let (collection, rkey) = key.split_once('/')?;
                let record = Record::from_cbor(self.blocks.get(cid)?).ok()?;
                Some((Nsid::parse(collection).ok()?, rkey.to_string(), record))
            })
            .collect()
    }

    /// Apply a batch of writes, producing a new signed commit.
    pub fn apply_writes(&mut self, writes: &[Write], now: Datetime) -> Result<CommitResult> {
        if writes.is_empty() {
            return Err(AtError::RepoError("empty write batch".into()));
        }
        let old_mst = self.mst.clone();
        let mut bytes_written = 0usize;
        for write in writes {
            match write {
                Write::Create {
                    collection,
                    rkey,
                    record,
                } => {
                    let key = format!("{collection}/{rkey}");
                    if self.mst.contains(&key) {
                        self.mst = old_mst;
                        return Err(AtError::RepoError(format!("record exists: {key}")));
                    }
                    let bytes = record.to_cbor();
                    let cid = Cid::for_cbor(&bytes);
                    bytes_written += bytes.len();
                    self.blocks.insert(cid, bytes);
                    self.mst.insert(&key, cid)?;
                }
                Write::Update {
                    collection,
                    rkey,
                    record,
                } => {
                    let key = format!("{collection}/{rkey}");
                    if !self.mst.contains(&key) {
                        self.mst = old_mst;
                        return Err(AtError::RepoError(format!("record missing: {key}")));
                    }
                    let bytes = record.to_cbor();
                    let cid = Cid::for_cbor(&bytes);
                    bytes_written += bytes.len();
                    self.blocks.insert(cid, bytes);
                    self.mst.insert(&key, cid)?;
                }
                Write::Delete { collection, rkey } => {
                    let key = format!("{collection}/{rkey}");
                    if self.mst.remove(&key).is_none() {
                        self.mst = old_mst;
                        return Err(AtError::RepoError(format!("record missing: {key}")));
                    }
                }
            }
        }
        let diff = self.mst.diff(&old_mst);
        let ops: Vec<RecordOp> = diff
            .iter()
            .map(|op| match op {
                MstDiffOp::Created { key, cid } => RecordOp {
                    action: WriteAction::Create,
                    key: key.clone(),
                    cid: Some(*cid),
                },
                MstDiffOp::Updated { key, new, .. } => RecordOp {
                    action: WriteAction::Update,
                    key: key.clone(),
                    cid: Some(*new),
                },
                MstDiffOp::Deleted { key, .. } => RecordOp {
                    action: WriteAction::Delete,
                    key: key.clone(),
                    cid: None,
                },
            })
            .collect();

        let rev = self.clock.next(now);
        let data = self.mst.root_cid();
        let prev = self.head().map(Commit::cid);
        let mut commit = Commit {
            did: self.did.clone(),
            version: 3,
            data,
            rev,
            prev,
            sig: Signature([0u8; 32]),
        };
        commit.sig = self.signing_key.sign(&commit.unsigned_bytes());
        // Account for the MST root node and commit block.
        bytes_written += commit.to_cbor().len();
        self.commits.push(commit.clone());
        Ok(CommitResult {
            commit,
            ops,
            bytes_written,
        })
    }

    /// Convenience: create a record keyed by a fresh TID.
    pub fn create_record(
        &mut self,
        collection: Nsid,
        record: Record,
        now: Datetime,
    ) -> Result<(String, CommitResult)> {
        let rkey = self.clock.next(now).to_string();
        let result = self.apply_writes(
            &[Write::Create {
                collection,
                rkey: rkey.clone(),
                record,
            }],
            now,
        )?;
        Ok((rkey, result))
    }

    /// Export the full repository as a CAR-like archive: header + every block
    /// (commits, MST nodes, records). Used by `com.atproto.sync.getRepo`.
    pub fn export_car(&self) -> Vec<u8> {
        let mut blocks: Vec<(Cid, Vec<u8>)> = Vec::new();
        for commit in &self.commits {
            blocks.push((commit.cid(), commit.to_cbor()));
        }
        for node in self.mst.blocks() {
            blocks.push((node.cid, node.bytes));
        }
        for (cid, bytes) in &self.blocks {
            blocks.push((*cid, bytes.clone()));
        }
        let header = Value::map([
            ("version", Value::Int(1)),
            (
                "roots",
                Value::Array(
                    self.head()
                        .map(|c| vec![Value::Link(c.cid())])
                        .unwrap_or_default(),
                ),
            ),
        ]);
        let mut out = Vec::new();
        let header_bytes = cbor::encode(&header);
        write_varint(header_bytes.len() as u64, &mut out);
        out.extend_from_slice(&header_bytes);
        for (cid, bytes) in blocks {
            let cid_bytes = cid.to_bytes();
            write_varint((cid_bytes.len() + bytes.len()) as u64, &mut out);
            out.extend_from_slice(&cid_bytes);
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Parse a CAR archive back into `(roots, blocks)`.
    pub fn parse_car(bytes: &[u8]) -> Result<ParsedCar> {
        let mut pos = 0usize;
        let (header_len, read) = read_varint(&bytes[pos..])?;
        pos += read;
        let header_end = pos + header_len as usize;
        if header_end > bytes.len() {
            return Err(AtError::RepoError("truncated CAR header".into()));
        }
        let header = cbor::decode(&bytes[pos..header_end])?;
        pos = header_end;
        let roots = header
            .get("roots")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_link)
            .copied()
            .collect();
        let mut blocks = BTreeMap::new();
        while pos < bytes.len() {
            let (len, read) = read_varint(&bytes[pos..])?;
            pos += read;
            let end = pos + len as usize;
            if end > bytes.len() || len < 36 {
                return Err(AtError::RepoError("truncated CAR block".into()));
            }
            let cid = Cid::from_bytes(&bytes[pos..pos + 36])?;
            let data = bytes[pos + 36..end].to_vec();
            if Cid::for_cbor(&data) != cid && Cid::for_raw(&data) != cid {
                return Err(AtError::RepoError(format!(
                    "block does not match CID {cid}"
                )));
            }
            blocks.insert(cid, data);
            pos = end;
        }
        Ok((roots, blocks))
    }

    /// Drop historical blocks that are no longer reachable from the live MST
    /// (models an "infrastructure takedown" / GDPR purge). Returns the number
    /// of bytes reclaimed.
    pub fn garbage_collect(&mut self) -> usize {
        let live: std::collections::BTreeSet<Cid> = self.mst.iter().map(|(_, c)| *c).collect();
        let before = self.store_size();
        self.blocks.retain(|cid, _| live.contains(cid));
        before - self.store_size()
    }
}

fn write_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8]) -> Result<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        value |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
        if shift > 63 {
            return Err(AtError::RepoError("varint overflow".into()));
        }
    }
    Err(AtError::RepoError("truncated varint".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsid::known;
    use crate::record::PostRecord;

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 24, 9, 0, 0).unwrap()
    }

    fn post_nsid() -> Nsid {
        Nsid::parse(known::POST).unwrap()
    }

    fn new_repo(name: &str) -> Repository {
        Repository::new(Did::plc_from_seed(name.as_bytes()), b"network-secret")
    }

    fn post(text: &str) -> Record {
        Record::Post(PostRecord::simple(text, "en", now()))
    }

    #[test]
    fn create_get_update_delete_cycle() {
        let mut repo = new_repo("alice");
        assert!(repo.head().is_none());
        let (rkey, result) = repo
            .create_record(post_nsid(), post("first"), now())
            .unwrap();
        assert_eq!(result.ops.len(), 1);
        assert_eq!(result.ops[0].action, WriteAction::Create);
        assert_eq!(result.ops[0].collection(), known::POST);
        assert_eq!(repo.record_count(), 1);
        assert_eq!(repo.get_record(&post_nsid(), &rkey), Some(post("first")));

        let update = repo
            .apply_writes(
                &[Write::Update {
                    collection: post_nsid(),
                    rkey: rkey.clone(),
                    record: post("edited"),
                }],
                now().plus_seconds(10),
            )
            .unwrap();
        assert_eq!(update.ops[0].action, WriteAction::Update);
        assert_eq!(repo.get_record(&post_nsid(), &rkey), Some(post("edited")));

        let delete = repo
            .apply_writes(
                &[Write::Delete {
                    collection: post_nsid(),
                    rkey: rkey.clone(),
                }],
                now().plus_seconds(20),
            )
            .unwrap();
        assert_eq!(delete.ops[0].action, WriteAction::Delete);
        assert!(repo.get_record(&post_nsid(), &rkey).is_none());
        assert_eq!(repo.record_count(), 0);
        assert_eq!(repo.commits().len(), 3);
    }

    #[test]
    fn commit_chain_links_and_revs_increase() {
        let mut repo = new_repo("bob");
        for i in 0..5 {
            repo.create_record(post_nsid(), post(&format!("post {i}")), now())
                .unwrap();
        }
        let commits = repo.commits();
        assert_eq!(commits.len(), 5);
        assert!(commits[0].prev.is_none());
        for i in 1..commits.len() {
            assert_eq!(commits[i].prev, Some(commits[i - 1].cid()));
            assert!(commits[i].rev > commits[i - 1].rev);
        }
    }

    #[test]
    fn commits_are_signed_and_verifiable() {
        let mut repo = new_repo("carol");
        repo.create_record(post_nsid(), post("signed"), now())
            .unwrap();
        let head = repo.head().unwrap().clone();
        assert!(head.verify(repo.signing_key()));
        // A different key does not verify.
        let other = SigningKey::from_seed(b"other");
        assert!(!head.verify(&other));
        // Tampering with the data pointer breaks verification.
        let mut tampered = head.clone();
        tampered.data = Cid::for_cbor(b"evil");
        assert!(!tampered.verify(repo.signing_key()));
    }

    #[test]
    fn rejects_conflicting_writes() {
        let mut repo = new_repo("dave");
        let (rkey, _) = repo.create_record(post_nsid(), post("x"), now()).unwrap();
        // Creating over an existing key fails and rolls back.
        let err = repo.apply_writes(
            &[Write::Create {
                collection: post_nsid(),
                rkey: rkey.clone(),
                record: post("y"),
            }],
            now(),
        );
        assert!(err.is_err());
        assert_eq!(repo.get_record(&post_nsid(), &rkey), Some(post("x")));
        // Updating or deleting a missing key fails.
        assert!(repo
            .apply_writes(
                &[Write::Update {
                    collection: post_nsid(),
                    rkey: "missing123".into(),
                    record: post("z"),
                }],
                now()
            )
            .is_err());
        assert!(repo
            .apply_writes(
                &[Write::Delete {
                    collection: post_nsid(),
                    rkey: "missing123".into(),
                }],
                now()
            )
            .is_err());
        // Empty batches are rejected.
        assert!(repo.apply_writes(&[], now()).is_err());
        assert_eq!(repo.commits().len(), 1);
    }

    #[test]
    fn list_collection_and_all_records() {
        let mut repo = new_repo("erin");
        repo.create_record(post_nsid(), post("a"), now()).unwrap();
        repo.create_record(post_nsid(), post("b"), now()).unwrap();
        repo.create_record(
            Nsid::parse(known::FOLLOW).unwrap(),
            Record::Follow(crate::record::FollowRecord {
                subject: Did::plc_from_seed(b"frank"),
                created_at: now(),
            }),
            now(),
        )
        .unwrap();
        assert_eq!(repo.list_collection(&post_nsid()).len(), 2);
        assert_eq!(
            repo.list_collection(&Nsid::parse(known::FOLLOW).unwrap())
                .len(),
            1
        );
        assert_eq!(repo.all_records().len(), 3);
    }

    #[test]
    fn car_export_roundtrip() {
        let mut repo = new_repo("grace");
        for i in 0..20 {
            repo.create_record(post_nsid(), post(&format!("post {i}")), now())
                .unwrap();
        }
        let car = repo.export_car();
        assert!(!car.is_empty());
        let (roots, blocks) = Repository::parse_car(&car).unwrap();
        assert_eq!(roots, vec![repo.head().unwrap().cid()]);
        // Every live record block is present and matches its CID.
        for (_, _, record) in repo.all_records() {
            let cid = Cid::for_cbor(&record.to_cbor());
            assert!(blocks.contains_key(&cid));
        }
        // The head commit block is present.
        assert!(blocks.contains_key(&roots[0]));
    }

    #[test]
    fn parse_car_rejects_corruption() {
        let mut repo = new_repo("henry");
        repo.create_record(post_nsid(), post("x"), now()).unwrap();
        let mut car = repo.export_car();
        // Flip a byte near the end (inside some block payload).
        let idx = car.len() - 3;
        car[idx] ^= 0xff;
        assert!(Repository::parse_car(&car).is_err());
        assert!(Repository::parse_car(&[]).is_err());
    }

    #[test]
    fn deleted_blocks_persist_until_gc() {
        let mut repo = new_repo("iris");
        let (rkey, _) = repo
            .create_record(post_nsid(), post("to be deleted"), now())
            .unwrap();
        let record_cid = Cid::for_cbor(&post("to be deleted").to_cbor());
        repo.apply_writes(
            &[Write::Delete {
                collection: post_nsid(),
                rkey,
            }],
            now(),
        )
        .unwrap();
        // The paper notes deleted content remains recoverable from the repo.
        assert!(repo.get_block(&record_cid).is_some());
        let reclaimed = repo.garbage_collect();
        assert!(reclaimed > 0);
        assert!(repo.get_block(&record_cid).is_none());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX / 2,
        ] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let (back, read) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(read, buf.len());
        }
        assert!(read_varint(&[]).is_err());
        assert!(read_varint(&[0x80]).is_err());
    }
}
