//! A tiny deterministic generator for randomized tests (SplitMix64), so the
//! property-style tests need no external dependency and are reproducible.
//!
//! This intentionally duplicates the SplitMix64 step in
//! `bsky-simnet`'s `rng` module: this crate sits below `bsky-simnet` in the
//! dependency graph, so it cannot reuse `SimRng`. Unlike `SimRng`, `below()`
//! uses plain modulo reduction — biased for huge bounds, fine for test-case
//! synthesis. Keep the constants in sync with the twin if either changes.

/// Deterministic pseudo-random generator for test-case synthesis.
pub struct TestRng(u64);

impl TestRng {
    /// Create from a fixed seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Random byte vector with length in `[0, max_len)`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len.max(1) as u64) as usize;
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// Random lowercase ASCII string with length in `[min_len, max_len]`.
    pub fn lowercase(&mut self, min_len: usize, max_len: usize) -> String {
        let len = min_len + self.below((max_len - min_len + 1) as u64) as usize;
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }

    /// Random printable-ish string (includes non-ASCII) for parser fuzzing.
    pub fn junk_string(&mut self, max_len: usize) -> String {
        let len = self.below(max_len.max(1) as u64) as usize;
        (0..len)
            .map(|_| {
                match self.below(4) {
                    0 => (0x20 + self.below(0x5f) as u8) as char, // printable ASCII
                    1 => char::from_u32(0xa0 + self.below(0x500) as u32).unwrap_or('x'),
                    2 => ['.', ':', '/', '@', '-', '_'][self.below(6) as usize],
                    _ => char::from_u32(self.below(0x11_0000) as u32).unwrap_or('\u{fffd}'),
                }
            })
            .collect()
    }
}
