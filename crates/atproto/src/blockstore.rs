//! Pluggable, CID-addressed block storage.
//!
//! Every content-addressed byte blob in the system — repository record
//! blocks, MST node blocks, the relay's mirrored CAR archives, the study
//! mirror's decoded-record blocks — used to live in an ad-hoc
//! `BTreeMap<Cid, Vec<u8>>`. Those maps are grow-only, which ROADMAP flagged
//! as the `--scale` memory ceiling after the incremental-delta work. This
//! module extracts the storage concern behind one trait with three backends:
//!
//! * [`MemStore`] — the original in-memory map, still the default.
//! * [`PagedStore`] — blocks are appended to fixed-size *pages*; an LRU of
//!   resident pages bounds memory and cold pages spill to a per-store
//!   directory on disk. Every block read back from disk is re-hashed and
//!   verified against its CID, so a corrupted spill file can never feed bad
//!   bytes into the pipeline (corrupt blocks read as absent and are
//!   counted).
//! * [`CountingStore`] — a transparent wrapper that feeds shared
//!   [`CountingTotals`], used by tests to prove invariants like "a rejected
//!   write batch deletes every block it put" (no orphans).
//! * [`WriteBackStore`] — a write-back cache wrapper: `put`s buffer in a
//!   resident dirty map until [`BlockStore::flush`], and a `delete` of a
//!   still-buffered block cancels the write before it ever reaches the
//!   backend. A read-modify-write chain that rewrites an entity N times
//!   between flushes therefore costs the backend a single `put` instead of
//!   N `put`/`delete` pairs. The AppView wraps its entity store in one and
//!   flushes at day boundaries (the `--writeback` knob).
//!
//! ## Contract
//!
//! A `BlockStore` is a set of `(Cid, bytes)` pairs where the CID is the
//! content address of the bytes (DAG-CBOR or raw codec). `put` of an
//! existing CID is a no-op (content-addressed stores are idempotent);
//! `get` returns exactly the bytes that were put or nothing. Backends may
//! move blocks between memory and disk freely but must never lose or
//! reorder them: for any op sequence, every backend is observationally
//! equivalent to [`MemStore`] (pinned by the oracle property test below).
//!
//! Stores are built from a [`StoreConfig`], which is what the study CLI
//! (`repro --store mem|paged --page-size N --spill-dir DIR`) and the world
//! builders plumb through the stack.

use crate::cid::{Cid, CODEC_DAG_CBOR};
use crate::error::{AtError, Result};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregate statistics of one store (or a sum over many — see
/// [`StoreStats::absorb`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of blocks held.
    pub blocks: usize,
    /// Logical bytes of all blocks (resident + spilled).
    pub logical_bytes: usize,
    /// Bytes of blocks currently resident in memory.
    pub resident_bytes: usize,
    /// Bytes of blocks currently spilled to disk.
    pub spilled_bytes: usize,
    /// Pages written to the spill directory.
    pub spill_writes: u64,
    /// Pages loaded back from the spill directory.
    pub spill_loads: u64,
    /// Blocks that failed CID verification on read-back.
    pub corrupt_reads: u64,
    /// Reads served from a write-back cache's dirty buffer.
    pub writeback_hits: u64,
    /// Reads that fell through a write-back cache to its backend.
    pub writeback_misses: u64,
    /// Write-back cache drains that pushed at least one buffered block to
    /// the backend.
    pub writeback_flushes: u64,
    /// Buffered writes cancelled by a delete before reaching the backend
    /// (the same-day put/delete pairs the cache coalesces away).
    pub writeback_coalesced: u64,
}

impl StoreStats {
    /// Fold another store's stats into this one (counters add).
    pub fn absorb(&mut self, other: &StoreStats) {
        self.blocks += other.blocks;
        self.logical_bytes += other.logical_bytes;
        self.resident_bytes += other.resident_bytes;
        self.spilled_bytes += other.spilled_bytes;
        self.spill_writes += other.spill_writes;
        self.spill_loads += other.spill_loads;
        self.corrupt_reads += other.corrupt_reads;
        self.writeback_hits += other.writeback_hits;
        self.writeback_misses += other.writeback_misses;
        self.writeback_flushes += other.writeback_flushes;
        self.writeback_coalesced += other.writeback_coalesced;
    }
}

/// A CID-addressed block store.
///
/// See the module docs for the contract. The trait requires `Send` (stores
/// travel into shard worker threads inside repositories) and `Debug`
/// (repositories derive it).
pub trait BlockStore: std::fmt::Debug + Send {
    /// Fetch a block's bytes. Returns owned bytes because a disk-backed
    /// store may have to page them in.
    fn get(&self, cid: &Cid) -> Option<Vec<u8>>;

    /// Insert a block. Returns `true` when the block was newly inserted,
    /// `false` when the CID was already present (the bytes are dropped —
    /// content addressing makes them identical).
    fn put(&mut self, cid: Cid, bytes: Vec<u8>) -> bool;

    /// Whether a block is present.
    fn has(&self, cid: &Cid) -> bool;

    /// Remove a block, returning its logical byte length (0 when absent).
    fn delete(&mut self, cid: &Cid) -> usize;

    /// Number of blocks held.
    fn len(&self) -> usize;

    /// Whether the store holds no blocks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total logical bytes of all blocks (resident + spilled).
    fn bytes(&self) -> usize;

    /// Residency/spill statistics.
    fn stats(&self) -> StoreStats;

    /// Push any buffered writes through to durable state. A no-op for every
    /// backend except [`WriteBackStore`], whose dirty buffer drains here;
    /// callers that batch mutations (the AppView's day loop) flush at their
    /// epoch boundaries.
    fn flush(&mut self) {}

    /// Demote cold resident data to backing storage. A no-op for fully
    /// resident backends; [`PagedStore`] spills every sealed resident page,
    /// leaving only the open page in memory. Callers with an epoch rhythm
    /// (the AppView's day loop) invoke this right after [`flush`]: a day
    /// boundary ends the hot window, so sealed pages are overwhelmingly
    /// cold and any block that *is* re-read pages back in through the
    /// normal verified path.
    ///
    /// [`flush`]: BlockStore::flush
    fn evict_cold(&mut self) {}

    /// Clone into a fresh boxed store with identical contents.
    fn boxed_clone(&self) -> Box<dyn BlockStore>;
}

impl Clone for Box<dyn BlockStore> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Which backend a [`StoreConfig`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Everything resident in memory ([`MemStore`]).
    #[default]
    Mem,
    /// Paged with LRU disk spill ([`PagedStore`]).
    Paged,
}

/// Configuration for building block stores — the value the CLI flags
/// (`--store`, `--page-size`, `--spill-dir`) and the world builders carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Backend to build.
    pub kind: StoreKind,
    /// Page capacity in bytes before a page is sealed (paged backend).
    pub page_size: usize,
    /// Number of sealed pages kept resident before spilling (paged backend;
    /// the open page is always resident on top of this).
    pub resident_pages: usize,
    /// Spill root directory (paged backend). `None` uses the system temp
    /// directory; each store instance creates its own subdirectory lazily
    /// on first spill and removes it on drop.
    pub spill_dir: Option<String>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig::mem()
    }
}

impl StoreConfig {
    /// The in-memory backend.
    pub fn mem() -> StoreConfig {
        StoreConfig {
            kind: StoreKind::Mem,
            page_size: 16 * 1024,
            resident_pages: 4,
            spill_dir: None,
        }
    }

    /// The paged disk-spill backend with default page geometry.
    pub fn paged() -> StoreConfig {
        StoreConfig {
            kind: StoreKind::Paged,
            ..StoreConfig::mem()
        }
    }

    /// Override the page size in bytes (builder style).
    pub fn page_size(mut self, bytes: usize) -> StoreConfig {
        self.page_size = bytes.max(1);
        self
    }

    /// Override the resident-page LRU capacity (builder style).
    pub fn resident_pages(mut self, pages: usize) -> StoreConfig {
        self.resident_pages = pages.max(1);
        self
    }

    /// Override the spill root directory (builder style).
    pub fn spill_dir(mut self, dir: impl Into<String>) -> StoreConfig {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Build a fresh, empty store of the configured kind.
    pub fn build(&self) -> Box<dyn BlockStore> {
        match self.kind {
            StoreKind::Mem => Box::new(MemStore::new()),
            StoreKind::Paged => Box::new(PagedStore::new(self)),
        }
    }
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// The original backend: a plain in-memory map. Also the oracle the paged
/// backend is property-tested against.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    blocks: BTreeMap<Cid, Vec<u8>>,
    bytes: usize,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl BlockStore for MemStore {
    fn get(&self, cid: &Cid) -> Option<Vec<u8>> {
        self.blocks.get(cid).cloned()
    }

    fn put(&mut self, cid: Cid, bytes: Vec<u8>) -> bool {
        match self.blocks.entry(cid) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                self.bytes += bytes.len();
                slot.insert(bytes);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    fn has(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    fn delete(&mut self, cid: &Cid) -> usize {
        match self.blocks.remove(cid) {
            Some(bytes) => {
                self.bytes -= bytes.len();
                bytes.len()
            }
            None => 0,
        }
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            blocks: self.blocks.len(),
            logical_bytes: self.bytes,
            resident_bytes: self.bytes,
            ..StoreStats::default()
        }
    }

    fn boxed_clone(&self) -> Box<dyn BlockStore> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// PagedStore
// ---------------------------------------------------------------------------

/// Global sequence so every paged store instance gets its own spill
/// subdirectory, even across clones.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-process token mixed into the *default* spill root. `STORE_SEQ` only
/// uniquifies store directories within one process and PIDs get recycled,
/// so two processes sharing a bare `$TMPDIR/bsky-blockstore` root could end
/// up reading each other's page files (the CID check would drop them, but
/// silently, as corrupt reads). The token makes the default root unique per
/// process even under PID reuse; an explicit `--spill-dir` is left alone.
static PROCESS_TOKEN: std::sync::OnceLock<u64> = std::sync::OnceLock::new();

fn process_token() -> u64 {
    *PROCESS_TOKEN.get_or_init(|| {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let aslr = &PROCESS_TOKEN as *const _ as u64;
        clock.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ aslr.rotate_left(17)
    })
}

/// The default spill root for stores built without `--spill-dir`:
/// `$TMPDIR/bsky-blockstore-<pid>-<token>`, unique to this process.
fn default_spill_root() -> PathBuf {
    std::env::temp_dir().join(format!(
        "bsky-blockstore-{}-{:016x}",
        std::process::id(),
        process_token()
    ))
}

/// Where a block lives.
#[derive(Debug, Clone, Copy)]
struct Loc {
    page: u32,
    len: u32,
}

/// One page of blocks: resident (`blocks` is `Some`) or spilled to disk.
#[derive(Debug)]
struct Page {
    /// Live blocks while resident; `None` once spilled.
    blocks: Option<BTreeMap<Cid, Vec<u8>>>,
    /// Logical bytes of the page's *live* blocks (index-reachable).
    live_bytes: usize,
    /// Bytes of block payloads in the on-disk file (`0`: no file). May
    /// exceed `live_bytes` when blocks were deleted after the spill — the
    /// garbage stays on disk until [`PagedStore::compact`].
    file_bytes: usize,
    /// Whether the on-disk file covers every live block of this page.
    on_disk: bool,
}

impl Page {
    /// A fresh, resident, empty page.
    fn fresh() -> Page {
        Page {
            blocks: Some(BTreeMap::new()),
            live_bytes: 0,
            file_bytes: 0,
            on_disk: false,
        }
    }
}

#[derive(Debug)]
struct Paged {
    page_size: usize,
    resident_cap: usize,
    spill_root: PathBuf,
    /// Created lazily on first spill; removed on drop.
    dir: Option<PathBuf>,
    store_id: u64,
    index: BTreeMap<Cid, Loc>,
    pages: BTreeMap<u32, Page>,
    /// Id of the open (append) page — always resident, outside the LRU.
    open: u32,
    /// Sealed resident pages, least recently used at the front.
    lru: VecDeque<u32>,
    logical_bytes: usize,
    spill_writes: u64,
    spill_loads: u64,
    corrupt_reads: u64,
}

/// The paged disk-spill backend: blocks append to an open page; sealed
/// pages rotate through a bounded LRU and spill to disk when evicted. Reads
/// of spilled blocks page the whole page back in (verified by CID).
///
/// Reads take `&self` like every other backend, so the paging machinery
/// lives behind a [`RefCell`]; the store is `Send` (one shard owns it) but
/// deliberately not `Sync`.
#[derive(Debug)]
pub struct PagedStore {
    inner: RefCell<Paged>,
}

impl PagedStore {
    /// An empty paged store; the spill directory is created only when the
    /// first page actually spills.
    pub fn new(config: &StoreConfig) -> PagedStore {
        let spill_root = match &config.spill_dir {
            Some(dir) => PathBuf::from(dir),
            None => default_spill_root(),
        };
        let mut pages = BTreeMap::new();
        pages.insert(0, Page::fresh());
        PagedStore {
            inner: RefCell::new(Paged {
                page_size: config.page_size.max(1),
                resident_cap: config.resident_pages.max(1),
                spill_root,
                dir: None,
                store_id: STORE_SEQ.fetch_add(1, Ordering::Relaxed),
                index: BTreeMap::new(),
                pages,
                open: 0,
                lru: VecDeque::new(),
                logical_bytes: 0,
                spill_writes: 0,
                spill_loads: 0,
                corrupt_reads: 0,
            }),
        }
    }

    /// Rewrite spill files that accumulated dead blocks (deleted after the
    /// spill), dropping the garbage. Returns the on-disk bytes reclaimed.
    pub fn compact(&mut self) -> usize {
        let inner = self.inner.get_mut();
        let mut reclaimed = 0usize;
        let ids: Vec<u32> = inner.pages.keys().copied().collect();
        for id in ids {
            let (spilled, live, file) = {
                let page = &inner.pages[&id];
                (page.blocks.is_none(), page.live_bytes, page.file_bytes)
            };
            if !spilled || live >= file {
                continue;
            }
            if live == 0 {
                let _ = std::fs::remove_file(inner.page_path(id));
                reclaimed += file;
                if let Some(page) = inner.pages.get_mut(&id) {
                    page.file_bytes = 0;
                    page.on_disk = false;
                    page.blocks = Some(BTreeMap::new());
                }
                continue;
            }
            // Load (verified), filter to live blocks, rewrite in place.
            let blocks = inner.load_page(id);
            let page = inner.pages.get_mut(&id).expect("page exists");
            page.blocks = Some(blocks);
            page.on_disk = false;
            reclaimed += file - live;
            inner.spill(id);
        }
        reclaimed
    }
}

impl Paged {
    /// The one canonical spill directory for this store instance. `dir`
    /// caches it once `ensure_dir` has created it on disk.
    fn dir_path(&self) -> PathBuf {
        self.spill_root
            .join(format!("store-{}-{}", std::process::id(), self.store_id))
    }

    fn page_path(&self, id: u32) -> PathBuf {
        self.dir
            .clone()
            .unwrap_or_else(|| self.dir_path())
            .join(format!("page-{id:08}.bin"))
    }

    fn ensure_dir(&mut self) -> PathBuf {
        if self.dir.is_none() {
            let dir = self.dir_path();
            std::fs::create_dir_all(&dir).expect("create block-store spill directory");
            self.dir = Some(dir);
        }
        self.dir.clone().expect("spill dir set")
    }

    /// Write a resident sealed page to disk and drop its in-memory blocks.
    fn spill(&mut self, id: u32) {
        self.ensure_dir();
        let path = self.page_path(id);
        let page = self.pages.get_mut(&id).expect("page exists");
        let blocks = page.blocks.take().expect("spilling a resident page");
        if !page.on_disk {
            let mut out = Vec::new();
            let mut payload = 0usize;
            for (cid, bytes) in &blocks {
                out.extend_from_slice(&cid.to_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
                payload += bytes.len();
            }
            std::fs::write(&path, &out).expect("write block-store spill page");
            page.file_bytes = payload;
            page.on_disk = true;
            self.spill_writes += 1;
        }
    }

    /// Read a spilled page back, verifying every block against its CID.
    /// Corrupt blocks are dropped (and counted); only index-live blocks are
    /// reinstated.
    fn load_page(&mut self, id: u32) -> BTreeMap<Cid, Vec<u8>> {
        let path = self.page_path(id);
        let raw = std::fs::read(&path).unwrap_or_default();
        self.spill_loads += 1;
        let mut blocks = BTreeMap::new();
        let mut pos = 0usize;
        while pos + 40 <= raw.len() {
            let Ok(cid) = Cid::from_bytes(&raw[pos..pos + 36]) else {
                self.corrupt_reads += 1;
                break;
            };
            let len =
                u32::from_le_bytes([raw[pos + 36], raw[pos + 37], raw[pos + 38], raw[pos + 39]])
                    as usize;
            pos += 40;
            if pos + len > raw.len() {
                self.corrupt_reads += 1;
                break;
            }
            let data = raw[pos..pos + len].to_vec();
            pos += len;
            let expected = if cid.codec() == CODEC_DAG_CBOR {
                Cid::for_cbor(&data)
            } else {
                Cid::for_raw(&data)
            };
            if expected != cid {
                // Read-back verification: a flipped bit in the spill file
                // must never surface as block contents.
                self.corrupt_reads += 1;
                continue;
            }
            if matches!(self.index.get(&cid), Some(loc) if loc.page == id) {
                blocks.insert(cid, data);
            }
        }
        blocks
    }

    /// Evict sealed resident pages past the LRU capacity.
    fn enforce_cap(&mut self) {
        while self.lru.len() > self.resident_cap {
            let victim = self.lru.pop_front().expect("lru non-empty");
            self.spill(victim);
        }
    }

    /// Mark a sealed page as most recently used.
    fn touch(&mut self, id: u32) {
        if let Some(pos) = self.lru.iter().position(|&p| p == id) {
            self.lru.remove(pos);
            self.lru.push_back(id);
        }
    }

    fn stats(&self) -> StoreStats {
        let mut resident = 0usize;
        let mut spilled = 0usize;
        for page in self.pages.values() {
            if page.blocks.is_some() {
                resident += page.live_bytes;
            } else {
                spilled += page.live_bytes;
            }
        }
        StoreStats {
            blocks: self.index.len(),
            logical_bytes: self.logical_bytes,
            resident_bytes: resident,
            spilled_bytes: spilled,
            spill_writes: self.spill_writes,
            spill_loads: self.spill_loads,
            corrupt_reads: self.corrupt_reads,
            ..StoreStats::default()
        }
    }
}

impl Drop for Paged {
    fn drop(&mut self) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl BlockStore for PagedStore {
    fn get(&self, cid: &Cid) -> Option<Vec<u8>> {
        let mut inner = self.inner.borrow_mut();
        let loc = *inner.index.get(cid)?;
        let resident = inner.pages[&loc.page].blocks.is_some();
        if !resident {
            let blocks = inner.load_page(loc.page);
            inner.pages.get_mut(&loc.page).expect("page exists").blocks = Some(blocks);
            inner.lru.push_back(loc.page);
            inner.enforce_cap();
        } else if loc.page != inner.open {
            inner.touch(loc.page);
        }
        let bytes = inner.pages[&loc.page]
            .blocks
            .as_ref()
            .and_then(|b| b.get(cid).cloned());
        bytes
    }

    fn put(&mut self, cid: Cid, bytes: Vec<u8>) -> bool {
        let inner = self.inner.get_mut();
        if inner.index.contains_key(&cid) {
            return false;
        }
        let len = bytes.len();
        let open = inner.open;
        inner.index.insert(
            cid,
            Loc {
                page: open,
                len: len as u32,
            },
        );
        let page = inner.pages.get_mut(&open).expect("open page exists");
        page.blocks
            .as_mut()
            .expect("open page is resident")
            .insert(cid, bytes);
        page.live_bytes += len;
        inner.logical_bytes += len;
        if inner.pages[&open].live_bytes >= inner.page_size {
            // Seal the open page into the LRU and start a fresh one.
            inner.lru.push_back(open);
            inner.open = open + 1;
            inner.pages.insert(inner.open, Page::fresh());
            inner.enforce_cap();
        }
        true
    }

    fn has(&self, cid: &Cid) -> bool {
        self.inner.borrow().index.contains_key(cid)
    }

    fn delete(&mut self, cid: &Cid) -> usize {
        let inner = self.inner.get_mut();
        let Some(loc) = inner.index.remove(cid) else {
            return 0;
        };
        let page = inner.pages.get_mut(&loc.page).expect("page exists");
        page.live_bytes -= loc.len as usize;
        if let Some(blocks) = page.blocks.as_mut() {
            blocks.remove(cid);
        }
        inner.logical_bytes -= loc.len as usize;
        loc.len as usize
    }

    fn evict_cold(&mut self) {
        // Every sealed resident page sits in the LRU; spill them all. The
        // open page stays resident — it is the only page still taking
        // appends.
        let inner = self.inner.get_mut();
        while let Some(id) = inner.lru.pop_front() {
            inner.spill(id);
        }
    }

    fn len(&self) -> usize {
        self.inner.borrow().index.len()
    }

    fn bytes(&self) -> usize {
        self.inner.borrow().logical_bytes
    }

    fn stats(&self) -> StoreStats {
        self.inner.borrow().stats()
    }

    fn boxed_clone(&self) -> Box<dyn BlockStore> {
        // A clone is a fresh store (own spill directory) with identical
        // contents. Reading through `get` pages spilled blocks in via the
        // normal verified path.
        let (config, cids) = {
            let inner = self.inner.borrow();
            (
                StoreConfig {
                    kind: StoreKind::Paged,
                    page_size: inner.page_size,
                    resident_pages: inner.resident_cap,
                    spill_dir: Some(inner.spill_root.to_string_lossy().into_owned()),
                },
                inner.index.keys().copied().collect::<Vec<Cid>>(),
            )
        };
        let mut clone = PagedStore::new(&config);
        for cid in cids {
            if let Some(bytes) = self.get(&cid) {
                clone.put(cid, bytes);
            }
        }
        Box::new(clone)
    }
}

// ---------------------------------------------------------------------------
// CountingStore
// ---------------------------------------------------------------------------

/// Shared operation counters fed by a [`CountingStore`].
#[derive(Debug, Default)]
pub struct CountingTotals {
    puts: AtomicU64,
    gets: AtomicU64,
    deletes: AtomicU64,
    bytes_put: AtomicU64,
    bytes_deleted: AtomicU64,
}

impl CountingTotals {
    /// Blocks newly inserted.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Successful block reads.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Blocks removed.
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    /// Bytes of newly inserted blocks.
    pub fn bytes_put(&self) -> u64 {
        self.bytes_put.load(Ordering::Relaxed)
    }

    /// Bytes of removed blocks.
    pub fn bytes_deleted(&self) -> u64 {
        self.bytes_deleted.load(Ordering::Relaxed)
    }
}

/// A transparent wrapper that counts operations into shared
/// [`CountingTotals`] — the handle stays with the caller while the store
/// disappears into a repository.
#[derive(Debug)]
pub struct CountingStore {
    inner: Box<dyn BlockStore>,
    totals: Arc<CountingTotals>,
}

impl CountingStore {
    /// Wrap a store; returns the wrapper and the shared totals handle.
    pub fn new(inner: Box<dyn BlockStore>) -> (CountingStore, Arc<CountingTotals>) {
        let totals = Arc::new(CountingTotals::default());
        (
            CountingStore {
                inner,
                totals: totals.clone(),
            },
            totals,
        )
    }
}

impl BlockStore for CountingStore {
    fn get(&self, cid: &Cid) -> Option<Vec<u8>> {
        let out = self.inner.get(cid);
        if out.is_some() {
            self.totals.gets.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    fn put(&mut self, cid: Cid, bytes: Vec<u8>) -> bool {
        let len = bytes.len() as u64;
        let fresh = self.inner.put(cid, bytes);
        if fresh {
            self.totals.puts.fetch_add(1, Ordering::Relaxed);
            self.totals.bytes_put.fetch_add(len, Ordering::Relaxed);
        }
        fresh
    }

    fn has(&self, cid: &Cid) -> bool {
        self.inner.has(cid)
    }

    fn delete(&mut self, cid: &Cid) -> usize {
        let removed = self.inner.delete(cid);
        if removed > 0 {
            self.totals.deletes.fetch_add(1, Ordering::Relaxed);
            self.totals
                .bytes_deleted
                .fetch_add(removed as u64, Ordering::Relaxed);
        }
        removed
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes(&self) -> usize {
        self.inner.bytes()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn boxed_clone(&self) -> Box<dyn BlockStore> {
        // The clone shares the totals handle: a cloned repository keeps
        // feeding the same counters.
        Box::new(CountingStore {
            inner: self.inner.clone(),
            totals: self.totals.clone(),
        })
    }
}

// ---------------------------------------------------------------------------
// WriteBackStore
// ---------------------------------------------------------------------------

/// A write-back cache in front of any [`BlockStore`].
///
/// `put` lands in a resident dirty buffer; [`BlockStore::flush`] drains the
/// buffer to the backend. A `delete` of a still-buffered block removes it
/// from the buffer without the backend ever seeing it — that cancellation is
/// the *coalescing*: an entity rewritten N times between flushes (each
/// rewrite a `delete` of the old CID plus a `put` of the new) reaches the
/// backend as exactly one `put`.
///
/// The wrapper is observationally transparent: `get`/`has` consult the
/// buffer first, so readers always see buffered state, and any op sequence
/// interleaved with `flush`es behaves exactly like the unwrapped backend
/// (pinned by the oracle property test below). Stats report the buffer as
/// resident bytes plus the `writeback_*` counters.
#[derive(Debug)]
pub struct WriteBackStore {
    inner: Box<dyn BlockStore>,
    dirty: BTreeMap<Cid, Vec<u8>>,
    dirty_bytes: usize,
    /// Reads take `&self` like every backend, so the hit/miss tally lives
    /// behind `Cell`s (the store is `Send`, not `Sync` — one shard owns it).
    hits: Cell<u64>,
    misses: Cell<u64>,
    flushes: u64,
    coalesced: u64,
}

impl WriteBackStore {
    /// Wrap a backend with an empty dirty buffer.
    pub fn new(inner: Box<dyn BlockStore>) -> WriteBackStore {
        WriteBackStore {
            inner,
            dirty: BTreeMap::new(),
            dirty_bytes: 0,
            hits: Cell::new(0),
            misses: Cell::new(0),
            flushes: 0,
            coalesced: 0,
        }
    }

    /// Number of blocks currently buffered (unflushed).
    pub fn pending(&self) -> usize {
        self.dirty.len()
    }
}

impl BlockStore for WriteBackStore {
    fn get(&self, cid: &Cid) -> Option<Vec<u8>> {
        if let Some(bytes) = self.dirty.get(cid) {
            self.hits.set(self.hits.get() + 1);
            return Some(bytes.clone());
        }
        self.misses.set(self.misses.get() + 1);
        self.inner.get(cid)
    }

    fn put(&mut self, cid: Cid, bytes: Vec<u8>) -> bool {
        if self.dirty.contains_key(&cid) || self.inner.has(&cid) {
            return false;
        }
        self.dirty_bytes += bytes.len();
        self.dirty.insert(cid, bytes);
        true
    }

    fn has(&self, cid: &Cid) -> bool {
        self.dirty.contains_key(cid) || self.inner.has(cid)
    }

    fn delete(&mut self, cid: &Cid) -> usize {
        if let Some(bytes) = self.dirty.remove(cid) {
            self.dirty_bytes -= bytes.len();
            self.coalesced += 1;
            return bytes.len();
        }
        self.inner.delete(cid)
    }

    fn len(&self) -> usize {
        self.inner.len() + self.dirty.len()
    }

    fn bytes(&self) -> usize {
        self.inner.bytes() + self.dirty_bytes
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self.inner.stats();
        stats.blocks += self.dirty.len();
        stats.logical_bytes += self.dirty_bytes;
        stats.resident_bytes += self.dirty_bytes;
        stats.writeback_hits += self.hits.get();
        stats.writeback_misses += self.misses.get();
        stats.writeback_flushes += self.flushes;
        stats.writeback_coalesced += self.coalesced;
        stats
    }

    fn flush(&mut self) {
        if !self.dirty.is_empty() {
            self.flushes += 1;
            for (cid, bytes) in std::mem::take(&mut self.dirty) {
                self.inner.put(cid, bytes);
            }
            self.dirty_bytes = 0;
        }
        self.inner.flush();
    }

    fn evict_cold(&mut self) {
        self.inner.evict_cold();
    }

    fn boxed_clone(&self) -> Box<dyn BlockStore> {
        Box::new(WriteBackStore {
            inner: self.inner.clone(),
            dirty: self.dirty.clone(),
            dirty_bytes: self.dirty_bytes,
            hits: self.hits.clone(),
            misses: self.misses.clone(),
            flushes: self.flushes,
            coalesced: self.coalesced,
        })
    }
}

/// Verify a CAR-shaped store invariant used by callers that treat stores as
/// opaque: the block either round-trips exactly or is absent.
pub fn verify_roundtrip(store: &dyn BlockStore, cid: &Cid, expected: &[u8]) -> Result<()> {
    match store.get(cid) {
        Some(bytes) if bytes == expected => Ok(()),
        Some(_) => Err(AtError::RepoError(format!(
            "store returned different bytes for {cid}"
        ))),
        None => Err(AtError::RepoError(format!("store lost block {cid}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrand::TestRng;

    fn tmp_root() -> String {
        std::env::temp_dir()
            .join("bsky-blockstore-test")
            .to_string_lossy()
            .into_owned()
    }

    fn paged_config() -> StoreConfig {
        // Tiny pages and a 1-page LRU so a handful of blocks already spill.
        StoreConfig::paged()
            .page_size(64)
            .resident_pages(1)
            .spill_dir(tmp_root())
    }

    fn block(n: u64, len: usize) -> (Cid, Vec<u8>) {
        let mut bytes = n.to_be_bytes().to_vec();
        bytes.resize(len.max(8), (n % 251) as u8);
        (Cid::for_raw(&bytes), bytes)
    }

    #[test]
    fn mem_store_basics() {
        let mut store = MemStore::new();
        let (cid, bytes) = block(1, 10);
        assert!(store.put(cid, bytes.clone()));
        assert!(!store.put(cid, bytes.clone()), "put is idempotent");
        assert!(store.has(&cid));
        assert_eq!(store.get(&cid), Some(bytes.clone()));
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), bytes.len());
        assert_eq!(store.stats().resident_bytes, bytes.len());
        assert_eq!(store.delete(&cid), bytes.len());
        assert_eq!(store.delete(&cid), 0);
        assert!(store.is_empty());
        verify_roundtrip(&MemStore::new(), &cid, &bytes).unwrap_err();
    }

    #[test]
    fn paged_store_spills_and_reads_back() {
        let mut store = PagedStore::new(&paged_config());
        let mut blocks = Vec::new();
        for n in 0..40u64 {
            let (cid, bytes) = block(n, 24);
            assert!(store.put(cid, bytes.clone()));
            blocks.push((cid, bytes));
        }
        let stats = store.stats();
        assert!(stats.spilled_bytes > 0, "small LRU must spill: {stats:?}");
        assert!(stats.spill_writes > 0);
        assert_eq!(
            stats.logical_bytes,
            stats.resident_bytes + stats.spilled_bytes
        );
        // Every block reads back exactly, paging cold pages in.
        for (cid, bytes) in &blocks {
            verify_roundtrip(&store, cid, bytes).unwrap();
        }
        assert!(store.stats().spill_loads > 0);
        assert_eq!(store.len(), blocks.len());
    }

    #[test]
    fn default_spill_root_is_unique_per_process() {
        let root = default_spill_root();
        let name = root
            .file_name()
            .expect("default root has a final component")
            .to_string_lossy()
            .into_owned();
        assert!(
            name.starts_with(&format!("bsky-blockstore-{}-", std::process::id())),
            "default root must embed the pid: {name}"
        );
        assert_eq!(root, default_spill_root(), "token is stable in-process");
        assert_ne!(name, "bsky-blockstore", "the shared legacy root is gone");
    }

    #[test]
    fn colliding_store_dirs_in_distinct_roots_never_cross_read() {
        // Two processes both count STORE_SEQ from zero, so once PIDs
        // recycle their stores can end up with identical
        // `store-<pid>-<id>` names. The per-process default root keeps
        // those stores in distinct roots; this pins down that even if one
        // store's page file lands where the other looks (the failure mode
        // of the old shared `bsky-blockstore` root), no foreign block ever
        // surfaces as contents.
        let root_a = std::env::temp_dir().join("bsky-blockstore-crossread-a");
        let root_b = std::env::temp_dir().join("bsky-blockstore-crossread-b");
        let _ = std::fs::remove_dir_all(&root_a);
        let _ = std::fs::remove_dir_all(&root_b);
        let config = |root: &PathBuf| {
            StoreConfig::paged()
                .page_size(64)
                .resident_pages(1)
                .spill_dir(root.to_string_lossy().into_owned())
        };
        let mut store_a = PagedStore::new(&config(&root_a));
        let mut store_b = PagedStore::new(&config(&root_b));
        let mut blocks_a = Vec::new();
        let mut blocks_b = Vec::new();
        for n in 0..12u64 {
            let (cid, bytes) = block(n, 24);
            store_a.put(cid, bytes.clone());
            blocks_a.push((cid, bytes));
            let (cid, bytes) = block(1000 + n, 24);
            store_b.put(cid, bytes.clone());
            blocks_b.push((cid, bytes));
        }
        store_a.evict_cold();
        store_b.evict_cold();
        let only_subdir = |root: &PathBuf| -> PathBuf {
            let mut dirs: Vec<PathBuf> = std::fs::read_dir(root)
                .expect("spill root exists")
                .map(|e| e.expect("dir entry").path())
                .collect();
            assert_eq!(dirs.len(), 1, "one store dir per root: {dirs:?}");
            dirs.pop().expect("one dir")
        };
        let page_a = only_subdir(&root_a).join("page-00000000.bin");
        let page_b = only_subdir(&root_b).join("page-00000000.bin");
        assert!(page_a.is_file() && page_b.is_file(), "both stores spilled");
        // The collision: store A's page file lands at store B's path.
        std::fs::copy(&page_a, &page_b).expect("overwrite page file");
        let (cid_b, _) = blocks_b[0];
        let (cid_a, bytes_a) = blocks_a[0].clone();
        assert_eq!(
            store_b.get(&cid_b),
            None,
            "a clobbered block reads as absent, never as foreign bytes"
        );
        assert_eq!(
            store_b.get(&cid_a),
            None,
            "another store's blocks never surface through the index"
        );
        assert_eq!(store_a.get(&cid_a), Some(bytes_a), "store A is untouched");
        let _ = std::fs::remove_dir_all(&root_a);
        let _ = std::fs::remove_dir_all(&root_b);
    }

    #[test]
    fn evict_cold_demotes_sealed_pages_and_keeps_blocks_readable() {
        // A generous LRU keeps several sealed pages resident...
        let config = StoreConfig::paged()
            .page_size(64)
            .resident_pages(8)
            .spill_dir(tmp_root());
        let mut store = PagedStore::new(&config);
        let mut blocks = Vec::new();
        for n in 0..40u64 {
            let (cid, bytes) = block(n, 24);
            store.put(cid, bytes.clone());
            blocks.push((cid, bytes));
        }
        let before = store.stats();
        assert!(
            before.resident_bytes > before.logical_bytes / 2,
            "sealed pages should still be resident: {before:?}"
        );
        // ...until an epoch boundary demotes them: only the open page stays.
        store.evict_cold();
        let after = store.stats();
        assert!(
            after.resident_bytes < before.resident_bytes,
            "evict_cold must shrink residency: {before:?} -> {after:?}"
        );
        assert_eq!(
            after.logical_bytes,
            after.resident_bytes + after.spilled_bytes
        );
        // Nothing is lost: every block pages back in through the verified
        // read path, and a second eviction after the reads is also safe.
        for (cid, bytes) in &blocks {
            verify_roundtrip(&store, cid, bytes).unwrap();
        }
        store.evict_cold();
        for (cid, bytes) in &blocks {
            verify_roundtrip(&store, cid, bytes).unwrap();
        }
        // MemStore and WriteBackStore pass the hint through harmlessly.
        let mut mem = MemStore::new();
        mem.evict_cold();
        let mut wb = WriteBackStore::new(Box::new(PagedStore::new(&config)));
        let (cid, bytes) = block(99, 24);
        wb.put(cid, bytes.clone());
        wb.evict_cold();
        assert_eq!(wb.get(&cid), Some(bytes), "dirty buffer survives eviction");
    }

    #[test]
    fn paged_store_clone_is_independent() {
        let mut store = PagedStore::new(&paged_config());
        let mut blocks = Vec::new();
        for n in 0..30u64 {
            let (cid, bytes) = block(n, 24);
            store.put(cid, bytes.clone());
            blocks.push((cid, bytes));
        }
        let clone = store.boxed_clone();
        let (gone, _) = blocks[0].clone();
        store.delete(&gone);
        assert!(store.get(&gone).is_none());
        assert_eq!(clone.get(&gone), Some(blocks[0].1.clone()));
        for (cid, bytes) in &blocks {
            verify_roundtrip(clone.as_ref(), cid, bytes).unwrap();
        }
    }

    #[test]
    fn paged_store_detects_corruption_on_read_back() {
        let mut store = PagedStore::new(&paged_config());
        let mut blocks = Vec::new();
        for n in 0..40u64 {
            let (cid, bytes) = block(n, 24);
            store.put(cid, bytes.clone());
            blocks.push((cid, bytes));
        }
        assert!(store.stats().spilled_bytes > 0);
        // Flip one byte in every spill file: the affected blocks must read
        // as absent, never as wrong bytes.
        let dir = store.inner.borrow().dir.clone().expect("spilled");
        let mut flipped = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut raw = std::fs::read(&path).unwrap();
            if raw.len() > 45 {
                raw[44] ^= 0xff; // inside the first block's payload
                std::fs::write(&path, &raw).unwrap();
                flipped += 1;
            }
        }
        assert!(flipped > 0);
        let mut missing = 0;
        for (cid, bytes) in &blocks {
            match store.get(cid) {
                Some(read) => assert_eq!(&read, bytes, "corrupt bytes surfaced"),
                None => missing += 1,
            }
        }
        assert!(missing > 0, "corruption must be detected");
        assert!(store.stats().corrupt_reads > 0);
    }

    #[test]
    fn paged_store_compact_reclaims_dead_spilled_blocks() {
        let mut store = PagedStore::new(&paged_config());
        let mut blocks = Vec::new();
        for n in 0..60u64 {
            let (cid, bytes) = block(n, 24);
            store.put(cid, bytes.clone());
            blocks.push((cid, bytes));
        }
        assert!(store.stats().spilled_bytes > 0);
        // Delete a spilled block (index-only removal: the file keeps it).
        let spilled_cid = {
            let inner = store.inner.borrow();
            *inner
                .index
                .iter()
                .find(|(_, loc)| inner.pages[&loc.page].blocks.is_none())
                .expect("a spilled block exists")
                .0
        };
        assert!(store.delete(&spilled_cid) > 0);
        let reclaimed = store.compact();
        assert!(reclaimed > 0, "compaction must rewrite the dirty page");
        assert!(store.get(&spilled_cid).is_none());
        // Everything else still round-trips.
        for (cid, bytes) in &blocks {
            if cid != &spilled_cid {
                verify_roundtrip(&store, cid, bytes).unwrap();
            }
        }
        // A second pass has nothing left to do.
        assert_eq!(store.compact(), 0);
    }

    #[test]
    fn counting_store_counts_and_shares_totals() {
        let (mut store, totals) = CountingStore::new(Box::new(MemStore::new()));
        let (cid, bytes) = block(9, 16);
        assert!(store.put(cid, bytes.clone()));
        assert!(!store.put(cid, bytes.clone()), "re-put not counted");
        assert_eq!(totals.puts(), 1);
        assert_eq!(totals.bytes_put(), bytes.len() as u64);
        assert_eq!(store.get(&cid), Some(bytes.clone()));
        assert_eq!(totals.gets(), 1);
        let clone = store.boxed_clone();
        assert_eq!(clone.get(&cid), Some(bytes.clone()));
        assert_eq!(totals.gets(), 2, "clones share the totals handle");
        assert_eq!(store.delete(&cid), bytes.len());
        assert_eq!(totals.deletes(), 1);
        assert_eq!(totals.bytes_deleted(), bytes.len() as u64);
        assert_eq!(store.delete(&cid), 0);
        assert_eq!(totals.deletes(), 1, "missing delete not counted");
    }

    #[test]
    fn store_config_builds_each_kind() {
        assert_eq!(StoreConfig::default().kind, StoreKind::Mem);
        let mem = StoreConfig::mem().build();
        assert_eq!(mem.len(), 0);
        let paged = paged_config().build();
        assert!(paged.is_empty());
        let cfg = StoreConfig::paged().page_size(0).resident_pages(0);
        assert_eq!(cfg.page_size, 1, "page size clamps to 1");
        assert_eq!(cfg.resident_pages, 1, "LRU cap clamps to 1");
    }

    #[test]
    fn writeback_store_buffers_coalesces_and_flushes() {
        let mut store = WriteBackStore::new(Box::new(MemStore::new()));
        let (cid1, bytes1) = block(1, 16);
        let (cid2, bytes2) = block(2, 16);
        assert!(store.put(cid1, bytes1.clone()));
        assert!(
            !store.put(cid1, bytes1.clone()),
            "buffered put is idempotent"
        );
        assert_eq!(store.pending(), 1);
        // Buffered reads hit the dirty map, not the backend.
        assert_eq!(store.get(&cid1), Some(bytes1.clone()));
        assert!(store.has(&cid1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), bytes1.len());
        // The same-day rewrite pattern: delete the buffered block before a
        // flush and the backend never sees it.
        assert_eq!(store.delete(&cid1), bytes1.len());
        assert!(store.put(cid2, bytes2.clone()));
        store.flush();
        assert_eq!(store.pending(), 0);
        let stats = store.stats();
        assert_eq!(stats.writeback_coalesced, 1);
        assert_eq!(stats.writeback_flushes, 1);
        assert_eq!(stats.writeback_hits, 1);
        assert_eq!(stats.blocks, 1, "only the surviving block was flushed");
        // Post-flush reads come from the backend and count as misses.
        assert_eq!(store.get(&cid2), Some(bytes2));
        assert!(store.stats().writeback_misses >= 1);
        // Re-putting a flushed block is still idempotent; deleting it
        // reaches through to the backend.
        assert!(!store.put(cid2, vec![0; 16]));
        assert!(store.delete(&cid2) > 0);
        assert!(store.is_empty());
        // An empty flush is not counted.
        store.flush();
        assert_eq!(store.stats().writeback_flushes, 1);
    }

    #[test]
    fn writeback_store_clone_carries_the_buffer() {
        let mut store = WriteBackStore::new(Box::new(MemStore::new()));
        let (cid, bytes) = block(7, 24);
        store.put(cid, bytes.clone());
        let mut clone = store.boxed_clone();
        store.delete(&cid);
        assert!(store.get(&cid).is_none());
        assert_eq!(
            clone.get(&cid),
            Some(bytes.clone()),
            "clone keeps its buffer"
        );
        clone.flush();
        verify_roundtrip(clone.as_ref(), &cid, &bytes).unwrap();
    }

    /// Write-back oracle: any interleaving of put / get / delete / flush —
    /// over either backend — is observationally identical to the bare
    /// in-memory oracle.
    #[test]
    fn writeback_store_matches_mem_oracle_under_random_ops() {
        let mut rng = TestRng::new(0x00b1_0c4e);
        for round in 0..15 {
            let inner: Box<dyn BlockStore> = if round % 2 == 0 {
                Box::new(MemStore::new())
            } else {
                Box::new(PagedStore::new(
                    &StoreConfig::paged()
                        .page_size(32 + rng.below(96) as usize)
                        .resident_pages(1 + rng.below(3) as usize)
                        .spill_dir(tmp_root()),
                ))
            };
            let mut cached = WriteBackStore::new(inner);
            let mut oracle = MemStore::new();
            let universe: Vec<(Cid, Vec<u8>)> = (0..24)
                .map(|i| block(round * 1_000 + i, 8 + rng.below(40) as usize))
                .collect();
            for _ in 0..400 {
                let (cid, bytes) = &universe[rng.below(universe.len() as u64) as usize];
                match rng.below(10) {
                    0..=3 => {
                        assert_eq!(
                            cached.put(*cid, bytes.clone()),
                            oracle.put(*cid, bytes.clone()),
                            "put disagrees"
                        );
                    }
                    4..=6 => {
                        assert_eq!(cached.get(cid), oracle.get(cid), "get disagrees");
                    }
                    7..=8 => {
                        assert_eq!(cached.delete(cid), oracle.delete(cid), "delete disagrees");
                    }
                    _ => {
                        cached.flush();
                    }
                }
                assert_eq!(cached.len(), oracle.len());
                assert_eq!(cached.bytes(), oracle.bytes());
            }
            for (cid, _) in &universe {
                assert_eq!(cached.get(cid), oracle.get(cid));
                assert_eq!(cached.has(cid), oracle.has(cid));
            }
        }
    }

    /// The oracle property test: any interleaving of put / get / delete /
    /// forced-eviction pressure / compact on a tiny-paged store behaves
    /// exactly like the in-memory oracle.
    #[test]
    fn paged_store_matches_mem_oracle_under_random_ops() {
        let mut rng = TestRng::new(0x0009_a6ed);
        for round in 0..15 {
            let config = StoreConfig::paged()
                .page_size(32 + rng.below(96) as usize)
                .resident_pages(1 + rng.below(3) as usize)
                .spill_dir(tmp_root());
            let mut paged = PagedStore::new(&config);
            let mut oracle = MemStore::new();
            // A bounded universe of blocks so deletes and re-puts collide.
            let universe: Vec<(Cid, Vec<u8>)> = (0..24)
                .map(|i| block(round * 1_000 + i, 8 + rng.below(40) as usize))
                .collect();
            for _ in 0..400 {
                let (cid, bytes) = &universe[rng.below(universe.len() as u64) as usize];
                match rng.below(10) {
                    0..=3 => {
                        assert_eq!(
                            paged.put(*cid, bytes.clone()),
                            oracle.put(*cid, bytes.clone()),
                            "put disagrees"
                        );
                    }
                    4..=6 => {
                        assert_eq!(paged.get(cid), oracle.get(cid), "get disagrees");
                    }
                    7..=8 => {
                        assert_eq!(paged.delete(cid), oracle.delete(cid), "delete disagrees");
                    }
                    _ => {
                        paged.compact();
                    }
                }
                assert_eq!(paged.len(), oracle.len());
                assert_eq!(paged.bytes(), oracle.bytes());
            }
            // Full final sweep: identical contents, block by block.
            for (cid, _) in &universe {
                assert_eq!(paged.get(cid), oracle.get(cid));
                assert_eq!(paged.has(cid), oracle.has(cid));
            }
        }
    }
}
