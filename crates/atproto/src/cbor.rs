//! A DAG-CBOR subset encoder/decoder.
//!
//! All Bluesky records are encoded as CBOR (§2, "User Data Repositories").
//! This module implements the deterministic subset DAG-CBOR prescribes:
//! definite-length items only, canonical map-key ordering (shorter keys first,
//! then bytewise), 64-bit integers, UTF-8 strings, byte strings, arrays, maps,
//! booleans, null, and CID links (encoded as tag 42 over the binary CID with a
//! multibase-identity prefix byte, matching the IPLD convention).

use crate::cid::Cid;
use crate::error::{AtError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A CBOR data model value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer (covers both CBOR major types 0 and 1).
    Int(i64),
    /// UTF-8 text string.
    Text(String),
    /// Raw byte string.
    Bytes(Vec<u8>),
    /// Array of values.
    Array(Vec<Value>),
    /// String-keyed map.
    Map(BTreeMap<String, Value>),
    /// An IPLD link to another block.
    Link(Cid),
}

impl Value {
    /// Build a map from an iterator of pairs.
    pub fn map<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Text helper.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Get a map field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// Interpret as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret as boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Interpret as a link.
    pub fn as_link(&self) -> Option<&Cid> {
        match self {
            Value::Link(c) => Some(c),
            _ => None,
        }
    }

    /// Interpret as a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Array(a) => write!(f, "array[{}]", a.len()),
            Value::Map(m) => write!(f, "map[{}]", m.len()),
            Value::Link(c) => write!(f, "link({c})"),
        }
    }
}

const MAJOR_UINT: u8 = 0;
const MAJOR_NEGINT: u8 = 1;
const MAJOR_BYTES: u8 = 2;
const MAJOR_TEXT: u8 = 3;
const MAJOR_ARRAY: u8 = 4;
const MAJOR_MAP: u8 = 5;
const MAJOR_TAG: u8 = 6;
const MAJOR_SIMPLE: u8 = 7;
const TAG_CID: u64 = 42;

/// Encode a value to DAG-CBOR bytes.
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(value, &mut out);
    out
}

fn write_head(major: u8, arg: u64, out: &mut Vec<u8>) {
    let mt = major << 5;
    if arg < 24 {
        out.push(mt | arg as u8);
    } else if arg <= u8::MAX as u64 {
        out.push(mt | 24);
        out.push(arg as u8);
    } else if arg <= u16::MAX as u64 {
        out.push(mt | 25);
        out.extend_from_slice(&(arg as u16).to_be_bytes());
    } else if arg <= u32::MAX as u64 {
        out.push(mt | 26);
        out.extend_from_slice(&(arg as u32).to_be_bytes());
    } else {
        out.push(mt | 27);
        out.extend_from_slice(&arg.to_be_bytes());
    }
}

fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push((MAJOR_SIMPLE << 5) | 22),
        Value::Bool(false) => out.push((MAJOR_SIMPLE << 5) | 20),
        Value::Bool(true) => out.push((MAJOR_SIMPLE << 5) | 21),
        Value::Int(i) => {
            if *i >= 0 {
                write_head(MAJOR_UINT, *i as u64, out);
            } else {
                write_head(MAJOR_NEGINT, (-1 - *i) as u64, out);
            }
        }
        Value::Text(s) => {
            write_head(MAJOR_TEXT, s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            write_head(MAJOR_BYTES, b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::Array(items) => {
            write_head(MAJOR_ARRAY, items.len() as u64, out);
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Map(map) => {
            write_head(MAJOR_MAP, map.len() as u64, out);
            // DAG-CBOR canonical ordering: length first, then bytewise.
            let mut keys: Vec<&String> = map.keys().collect();
            keys.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
            for key in keys {
                write_head(MAJOR_TEXT, key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_into(&map[key], out);
            }
        }
        Value::Link(cid) => {
            write_head(MAJOR_TAG, TAG_CID, out);
            let bytes = cid.to_bytes();
            // Multibase identity prefix (0x00) per the DAG-CBOR CID convention.
            write_head(MAJOR_BYTES, (bytes.len() + 1) as u64, out);
            out.push(0x00);
            out.extend_from_slice(&bytes);
        }
    }
}

/// Raw streaming writers for encoders that emit a fixed, known map shape
/// (the MST node encoder) without building a [`Value`] tree first. Callers
/// are responsible for emitting map keys in DAG-CBOR canonical order
/// (shorter first, then bytewise) — exactly what [`encode`] produces for
/// the equivalent `Value`, byte for byte.
pub(crate) mod raw {
    use super::*;

    /// Map head for `len` pairs.
    pub fn map_head(len: u64, out: &mut Vec<u8>) {
        write_head(MAJOR_MAP, len, out);
    }

    /// Array head for `len` items.
    pub fn array_head(len: u64, out: &mut Vec<u8>) {
        write_head(MAJOR_ARRAY, len, out);
    }

    /// Text string.
    pub fn text(s: &str, out: &mut Vec<u8>) {
        write_head(MAJOR_TEXT, s.len() as u64, out);
        out.extend_from_slice(s.as_bytes());
    }

    /// Non-negative integer.
    pub fn uint(value: u64, out: &mut Vec<u8>) {
        write_head(MAJOR_UINT, value, out);
    }

    /// Null.
    pub fn null(out: &mut Vec<u8>) {
        out.push((MAJOR_SIMPLE << 5) | 22);
    }

    /// A tagged IPLD link (CID), identical to `Value::Link`.
    pub fn link(cid: &Cid, out: &mut Vec<u8>) {
        write_head(MAJOR_TAG, TAG_CID, out);
        let bytes = cid.to_bytes();
        write_head(MAJOR_BYTES, (bytes.len() + 1) as u64, out);
        out.push(0x00);
        out.extend_from_slice(&bytes);
    }
}

/// Decode DAG-CBOR bytes into a value, requiring that the whole input is
/// consumed.
pub fn decode(bytes: &[u8]) -> Result<Value> {
    let mut reader = Reader { bytes, pos: 0 };
    let value = reader.read_value(0)?;
    if reader.pos != bytes.len() {
        return Err(AtError::CborDecode(format!(
            "{} trailing bytes",
            bytes.len() - reader.pos
        )));
    }
    Ok(value)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Reader<'a> {
    fn read_byte(&mut self) -> Result<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| AtError::CborDecode("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn read_slice(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.pos + len > self.bytes.len() {
            return Err(AtError::CborDecode("unexpected end of input".into()));
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn read_arg(&mut self, info: u8) -> Result<u64> {
        match info {
            0..=23 => Ok(info as u64),
            24 => Ok(self.read_byte()? as u64),
            25 => {
                let s = self.read_slice(2)?;
                Ok(u16::from_be_bytes([s[0], s[1]]) as u64)
            }
            26 => {
                let s = self.read_slice(4)?;
                Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]) as u64)
            }
            27 => {
                let s = self.read_slice(8)?;
                Ok(u64::from_be_bytes([
                    s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
                ]))
            }
            _ => Err(AtError::CborDecode(format!(
                "indefinite-length or reserved additional info {info}"
            ))),
        }
    }

    fn read_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(AtError::CborDecode("nesting too deep".into()));
        }
        let initial = self.read_byte()?;
        let major = initial >> 5;
        let info = initial & 0x1f;
        match major {
            MAJOR_UINT => {
                let v = self.read_arg(info)?;
                if v > i64::MAX as u64 {
                    return Err(AtError::CborDecode("integer out of range".into()));
                }
                Ok(Value::Int(v as i64))
            }
            MAJOR_NEGINT => {
                let v = self.read_arg(info)?;
                if v >= i64::MAX as u64 {
                    return Err(AtError::CborDecode("integer out of range".into()));
                }
                Ok(Value::Int(-1 - v as i64))
            }
            MAJOR_BYTES => {
                let len = self.read_arg(info)? as usize;
                Ok(Value::Bytes(self.read_slice(len)?.to_vec()))
            }
            MAJOR_TEXT => {
                let len = self.read_arg(info)? as usize;
                let s = std::str::from_utf8(self.read_slice(len)?)
                    .map_err(|_| AtError::CborDecode("invalid UTF-8 in text string".into()))?;
                Ok(Value::Text(s.to_string()))
            }
            MAJOR_ARRAY => {
                let len = self.read_arg(info)? as usize;
                if len > self.bytes.len() {
                    return Err(AtError::CborDecode("array length exceeds input".into()));
                }
                let mut items = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    items.push(self.read_value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            MAJOR_MAP => {
                let len = self.read_arg(info)? as usize;
                if len > self.bytes.len() {
                    return Err(AtError::CborDecode("map length exceeds input".into()));
                }
                let mut map = BTreeMap::new();
                for _ in 0..len {
                    let key = match self.read_value(depth + 1)? {
                        Value::Text(s) => s,
                        other => {
                            return Err(AtError::CborDecode(format!("non-text map key: {other}")))
                        }
                    };
                    let value = self.read_value(depth + 1)?;
                    if map.insert(key.clone(), value).is_some() {
                        return Err(AtError::CborDecode(format!("duplicate map key {key:?}")));
                    }
                }
                Ok(Value::Map(map))
            }
            MAJOR_TAG => {
                let tag = self.read_arg(info)?;
                if tag != TAG_CID {
                    return Err(AtError::CborDecode(format!("unsupported tag {tag}")));
                }
                let inner = self.read_value(depth + 1)?;
                match inner {
                    Value::Bytes(b) if !b.is_empty() && b[0] == 0x00 => {
                        Ok(Value::Link(Cid::from_bytes(&b[1..]).map_err(|e| {
                            AtError::CborDecode(format!("bad CID in link: {e}"))
                        })?))
                    }
                    _ => Err(AtError::CborDecode(
                        "tag 42 must wrap identity CID bytes".into(),
                    )),
                }
            }
            MAJOR_SIMPLE => match info {
                20 => Ok(Value::Bool(false)),
                21 => Ok(Value::Bool(true)),
                22 => Ok(Value::Null),
                _ => Err(AtError::CborDecode(format!(
                    "unsupported simple value {info}"
                ))),
            },
            _ => unreachable!("major type is 3 bits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::to_hex;

    fn roundtrip(v: &Value) -> Value {
        decode(&encode(v)).expect("roundtrip decode")
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(23),
            Value::Int(24),
            Value::Int(255),
            Value::Int(256),
            Value::Int(65_536),
            Value::Int(4_294_967_296),
            Value::Int(-1),
            Value::Int(-24),
            Value::Int(-25),
            Value::Int(-1_000_000),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN + 1),
            Value::text(""),
            Value::text("hello"),
            Value::text("日本語のポスト"),
            Value::Bytes(vec![]),
            Value::Bytes(vec![1, 2, 3, 255]),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn known_encodings_match_rfc8949() {
        // Selected RFC 8949 appendix A vectors.
        assert_eq!(to_hex(&encode(&Value::Int(0))), "00");
        assert_eq!(to_hex(&encode(&Value::Int(10))), "0a");
        assert_eq!(to_hex(&encode(&Value::Int(100))), "1864");
        assert_eq!(to_hex(&encode(&Value::Int(1000))), "1903e8");
        assert_eq!(to_hex(&encode(&Value::Int(-10))), "29");
        assert_eq!(to_hex(&encode(&Value::Int(-100))), "3863");
        assert_eq!(to_hex(&encode(&Value::text("a"))), "6161");
        assert_eq!(to_hex(&encode(&Value::text("IETF"))), "6449455446");
        assert_eq!(to_hex(&encode(&Value::Bool(true))), "f5");
        assert_eq!(to_hex(&encode(&Value::Null)), "f6");
        assert_eq!(
            to_hex(&encode(&Value::Array(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))),
            "83010203"
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        let post = Value::map([
            ("$type", Value::text("app.bsky.feed.post")),
            ("text", Value::text("Hello from the blue skies")),
            ("createdAt", Value::text("2024-04-24T13:05:09Z")),
            (
                "langs",
                Value::Array(vec![Value::text("en"), Value::text("pt")]),
            ),
            (
                "embed",
                Value::map([
                    ("imageCount", Value::Int(2)),
                    ("alt", Value::Null),
                    ("link", Value::Link(Cid::for_raw(b"image-bytes"))),
                ]),
            ),
        ]);
        assert_eq!(roundtrip(&post), post);
    }

    #[test]
    fn map_keys_are_canonically_ordered() {
        // "aa" (len 2) must sort before "b"? No: DAG-CBOR orders by length
        // first, so "b" (len 1) precedes "aa" (len 2).
        let v = Value::map([("aa", Value::Int(1)), ("b", Value::Int(2))]);
        let bytes = encode(&v);
        // map(2), text(1) 'b', 02, text(2) 'aa', 01
        assert_eq!(to_hex(&bytes), "a261620262616101");
        // Encoding is independent of insertion order.
        let v2 = Value::map([("b", Value::Int(2)), ("aa", Value::Int(1))]);
        assert_eq!(encode(&v2), bytes);
    }

    #[test]
    fn link_roundtrip() {
        let cid = Cid::for_cbor(b"a block");
        let v = Value::map([("root", Value::Link(cid))]);
        let back = roundtrip(&v);
        assert_eq!(back.get("root").unwrap().as_link().unwrap(), &cid);
    }

    #[test]
    fn decode_rejects_malformed() {
        // Truncated text string.
        assert!(decode(&[0x65, b'a', b'b']).is_err());
        // Indefinite-length array.
        assert!(decode(&[0x9f, 0x01, 0xff]).is_err());
        // Duplicate map keys.
        assert!(decode(&[0xa2, 0x61, b'a', 0x01, 0x61, b'a', 0x02]).is_err());
        // Non-text map key.
        assert!(decode(&[0xa1, 0x01, 0x01]).is_err());
        // Unknown tag.
        assert!(decode(&[0xc1, 0x01]).is_err());
        // Trailing garbage.
        assert!(decode(&[0x01, 0x02]).is_err());
        // Float (major 7, info 27) unsupported in our DAG-CBOR subset.
        assert!(decode(&[0xfb, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Absurd claimed array length.
        assert!(decode(&[0x9a, 0xff, 0xff, 0xff, 0xff]).is_err());
        // Empty input.
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut bytes = vec![0x81u8; 100]; // 100 nested single-element arrays...
        bytes.push(0x01); // ...terminating in the int 1
        assert!(decode(&bytes).is_err());
        let mut ok_bytes = vec![0x81u8; 10];
        ok_bytes.push(0x01);
        assert!(decode(&ok_bytes).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    fn arb_leaf(rng: &mut TestRng) -> Value {
        match rng.below(6) {
            0 => Value::Null,
            1 => Value::Bool(rng.below(2) == 0),
            2 => {
                let mut v = rng.next_u64() as i64;
                if v == i64::MIN {
                    v = 0;
                }
                Value::Int(v)
            }
            3 => Value::text(rng.lowercase(0, 24)),
            4 => Value::Bytes(rng.bytes(24)),
            _ => Value::Link(Cid::for_cbor(&rng.bytes(24))),
        }
    }

    fn arb_value(rng: &mut TestRng, depth: u32) -> Value {
        if depth == 0 || rng.below(3) == 0 {
            return arb_leaf(rng);
        }
        if rng.below(2) == 0 {
            let len = rng.below(6) as usize;
            Value::Array((0..len).map(|_| arb_value(rng, depth - 1)).collect())
        } else {
            let len = rng.below(6) as usize;
            Value::Map(
                (0..len)
                    .map(|_| (rng.lowercase(1, 8), arb_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = TestRng::new(0xcb01);
        for _ in 0..200 {
            let v = arb_value(&mut rng, 3);
            let bytes = encode(&v);
            let back = decode(&bytes).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = TestRng::new(0xcb02);
        for _ in 0..500 {
            let bytes = rng.bytes(256);
            let _ = decode(&bytes);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut rng = TestRng::new(0xcb03);
        for _ in 0..100 {
            let v = arb_value(&mut rng, 3);
            assert_eq!(encode(&v), encode(&v));
        }
    }
}
