//! `at://` URIs identifying records within the network.
//!
//! Records are addressed as `at://<did>/<collection>/<rkey>`, e.g.
//! `at://did:plc:.../app.bsky.feed.post/3kdgeujwlq32y` (§2). Feed generators
//! return lists of such URIs; the feed-post dataset joins them back to the
//! repository dataset (§3).

use crate::did::Did;
use crate::error::{AtError, Result};
use crate::nsid::Nsid;
use std::fmt;

/// A parsed `at://` URI.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtUri {
    did: Did,
    collection: Option<Nsid>,
    rkey: Option<String>,
}

impl AtUri {
    /// URI of an entire repository (`at://<did>`).
    pub fn repo(did: Did) -> AtUri {
        AtUri {
            did,
            collection: None,
            rkey: None,
        }
    }

    /// URI of a record.
    pub fn record(did: Did, collection: Nsid, rkey: impl Into<String>) -> AtUri {
        AtUri {
            did,
            collection: Some(collection),
            rkey: Some(rkey.into()),
        }
    }

    /// Parse an `at://` URI string.
    pub fn parse(s: &str) -> Result<AtUri> {
        let rest = s
            .strip_prefix("at://")
            .ok_or_else(|| AtError::InvalidAtUri(s.to_string()))?;
        let mut parts = rest.splitn(3, '/');
        let did_str = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| AtError::InvalidAtUri(s.to_string()))?;
        let did = Did::parse(did_str).map_err(|_| AtError::InvalidAtUri(s.to_string()))?;
        let collection = match parts.next() {
            Some(c) if !c.is_empty() => {
                Some(Nsid::parse(c).map_err(|_| AtError::InvalidAtUri(s.to_string()))?)
            }
            Some(_) => return Err(AtError::InvalidAtUri(s.to_string())),
            None => None,
        };
        let rkey = match parts.next() {
            Some(r) if !r.is_empty() => {
                if !r
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.' || b == b'_')
                {
                    return Err(AtError::InvalidAtUri(s.to_string()));
                }
                Some(r.to_string())
            }
            Some(_) => return Err(AtError::InvalidAtUri(s.to_string())),
            None => None,
        };
        if collection.is_none() && rkey.is_some() {
            return Err(AtError::InvalidAtUri(s.to_string()));
        }
        Ok(AtUri {
            did,
            collection,
            rkey,
        })
    }

    /// The repository owner.
    pub fn did(&self) -> &Did {
        &self.did
    }

    /// The collection NSID, if this URI points at a record or collection.
    pub fn collection(&self) -> Option<&Nsid> {
        self.collection.as_ref()
    }

    /// The record key, if this URI points at a record.
    pub fn rkey(&self) -> Option<&str> {
        self.rkey.as_deref()
    }

    /// Whether this URI points at a single record.
    pub fn is_record(&self) -> bool {
        self.collection.is_some() && self.rkey.is_some()
    }

    /// The repository-internal key `<collection>/<rkey>`, if a record URI.
    pub fn repo_key(&self) -> Option<String> {
        match (&self.collection, &self.rkey) {
            (Some(c), Some(r)) => Some(format!("{c}/{r}")),
            _ => None,
        }
    }

    /// FNV-1a hash of the URI's canonical string form (`at://…`), computed
    /// without materializing the string — the AppView's post-shard routing
    /// hash, on the per-like/per-label hot path.
    pub fn shard_hash(&self) -> u64 {
        use crate::did::{fnv1a_64, FNV_OFFSET};
        let hash = fnv1a_64(b"at://", FNV_OFFSET);
        let mut hash = self.did.fold_shard_hash(hash);
        if let Some(c) = &self.collection {
            hash = fnv1a_64(b"/", hash);
            hash = fnv1a_64(c.as_str().as_bytes(), hash);
        }
        if let Some(r) = &self.rkey {
            hash = fnv1a_64(b"/", hash);
            hash = fnv1a_64(r.as_bytes(), hash);
        }
        hash
    }
}

impl fmt::Display for AtUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at://{}", self.did)?;
        if let Some(c) = &self.collection {
            write!(f, "/{c}")?;
        }
        if let Some(r) = &self.rkey {
            write!(f, "/{r}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for AtUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AtUri({self})")
    }
}

impl std::str::FromStr for AtUri {
    type Err = AtError;
    fn from_str(s: &str) -> Result<AtUri> {
        AtUri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsid::known;

    fn did() -> Did {
        Did::plc_from_seed(b"alice")
    }

    #[test]
    fn record_uri_roundtrip() {
        let uri = AtUri::record(did(), Nsid::parse(known::POST).unwrap(), "3kdgeujwlq32y");
        let s = uri.to_string();
        assert!(s.starts_with("at://did:plc:"));
        assert!(s.ends_with("/app.bsky.feed.post/3kdgeujwlq32y"));
        let parsed = AtUri::parse(&s).unwrap();
        assert_eq!(parsed, uri);
        assert!(parsed.is_record());
        assert_eq!(
            parsed.repo_key().unwrap(),
            "app.bsky.feed.post/3kdgeujwlq32y"
        );
    }

    #[test]
    fn repo_uri() {
        let uri = AtUri::repo(did());
        assert!(!uri.is_record());
        assert!(uri.repo_key().is_none());
        let parsed = AtUri::parse(&uri.to_string()).unwrap();
        assert_eq!(parsed, uri);
    }

    #[test]
    fn collection_only_uri() {
        let s = format!("at://{}/app.bsky.feed.post", did());
        let uri = AtUri::parse(&s).unwrap();
        assert!(uri.collection().is_some());
        assert!(uri.rkey().is_none());
        assert!(!uri.is_record());
    }

    #[test]
    fn rejects_invalid() {
        for s in [
            "",
            "http://example.com",
            "at://",
            "at://notadid/app.bsky.feed.post/abc",
            "at://did:plc:ewvi7nxzyoun6zhxrhs64oiz//abc",
            "at://did:plc:ewvi7nxzyoun6zhxrhs64oiz/notansid/abc",
            "at://did:plc:ewvi7nxzyoun6zhxrhs64oiz/app.bsky.feed.post/bad key",
        ] {
            assert!(AtUri::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn web_did_uris_work() {
        let uri = AtUri::record(
            Did::web("blog.example.org").unwrap(),
            Nsid::parse(known::WHTWND_ENTRY).unwrap(),
            "entry1",
        );
        let parsed = AtUri::parse(&uri.to_string()).unwrap();
        assert_eq!(parsed.did().to_string(), "did:web:blog.example.org");
    }

    #[test]
    fn shard_hash_is_the_fnv1a_of_the_string_form() {
        use crate::did::{fnv1a_64, FNV_OFFSET};
        for uri in [
            AtUri::repo(did()),
            AtUri::record(did(), Nsid::parse(known::POST).unwrap(), "3kdgeujwlq32y"),
            AtUri::record(
                Did::web("blog.example.org").unwrap(),
                Nsid::parse(known::WHTWND_ENTRY).unwrap(),
                "entry1",
            ),
        ] {
            assert_eq!(
                uri.shard_hash(),
                fnv1a_64(uri.to_string().as_bytes(), FNV_OFFSET),
                "{uri}"
            );
        }
    }
}
