//! User handles.
//!
//! Handles are mutable, human-friendly identifiers; each handle is a
//! fully-qualified domain name whose ownership is proven either through a DNS
//! TXT record at `_atproto.<handle>` or through an
//! `https://<handle>/.well-known/atproto-did` document (§2, §5 of the paper).
//! By default Bluesky issues custodial handles under `bsky.social`.

use crate::error::{AtError, Result};
use std::fmt;

/// The default custodial handle suffix operated by Bluesky PBC.
pub const BSKY_SOCIAL: &str = "bsky.social";

/// A validated FQDN handle such as `alice.bsky.social` or `example.com`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(String);

/// How ownership of a handle is proven (§5, "Validating Handle Ownership").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandleProof {
    /// DNS TXT record at `_atproto.<handle>` containing `did=<did>`.
    DnsTxt,
    /// HTTPS document at `/.well-known/atproto-did` containing the DID.
    WellKnown,
}

impl Handle {
    /// Maximum total length of a handle in bytes (DNS limit).
    pub const MAX_LEN: usize = 253;
    /// Maximum length of a single label.
    pub const MAX_LABEL_LEN: usize = 63;

    /// Parse and validate a handle.
    pub fn parse(s: &str) -> Result<Handle> {
        let lower = s.to_ascii_lowercase();
        let lower = lower.strip_prefix('@').unwrap_or(&lower).to_string();
        if lower.is_empty() || lower.len() > Self::MAX_LEN {
            return Err(AtError::InvalidHandle(s.to_string()));
        }
        let labels: Vec<&str> = lower.split('.').collect();
        if labels.len() < 2 {
            return Err(AtError::InvalidHandle(s.to_string()));
        }
        for label in &labels {
            if label.is_empty()
                || label.len() > Self::MAX_LABEL_LEN
                || label.starts_with('-')
                || label.ends_with('-')
                || !label
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            {
                return Err(AtError::InvalidHandle(s.to_string()));
            }
        }
        // TLD must not be all-numeric.
        if labels.last().unwrap().bytes().all(|b| b.is_ascii_digit()) {
            return Err(AtError::InvalidHandle(s.to_string()));
        }
        Ok(Handle(lower))
    }

    /// Construct the default custodial handle `<username>.bsky.social`.
    pub fn bsky_social(username: &str) -> Result<Handle> {
        Handle::parse(&format!("{username}.{BSKY_SOCIAL}"))
    }

    /// The handle as a string slice (never includes the leading `@`).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The DNS labels of the handle, most-specific first.
    pub fn labels(&self) -> Vec<&str> {
        self.0.split('.').collect()
    }

    /// Whether this handle is a custodial subdomain of `bsky.social`.
    pub fn is_bsky_social(&self) -> bool {
        self.0 == BSKY_SOCIAL || self.0.ends_with(".bsky.social")
    }

    /// Whether this handle is a subdomain of the given parent domain.
    pub fn is_subdomain_of(&self, parent: &str) -> bool {
        let parent = parent.to_ascii_lowercase();
        self.0 == parent || self.0.ends_with(&format!(".{parent}"))
    }

    /// The DNS name at which the TXT ownership proof must live.
    pub fn atproto_txt_name(&self) -> String {
        format!("_atproto.{}", self.0)
    }

    /// The URL path of the well-known ownership proof.
    pub fn well_known_url(&self) -> String {
        format!("https://{}/.well-known/atproto-did", self.0)
    }

    /// Naive registrable-domain guess: the last two labels. The identity
    /// crate refines this with the Public Suffix List; this helper exists for
    /// quick grouping where PSL context is unavailable.
    pub fn naive_registered_domain(&self) -> String {
        let labels = self.labels();
        if labels.len() <= 2 {
            self.0.clone()
        } else {
            labels[labels.len() - 2..].join(".")
        }
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle(@{})", self.0)
    }
}

impl std::str::FromStr for Handle {
    type Err = AtError;
    fn from_str(s: &str) -> Result<Handle> {
        Handle::parse(s)
    }
}

impl AsRef<str> for Handle {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_handles() {
        let h = Handle::parse("alice.bsky.social").unwrap();
        assert!(h.is_bsky_social());
        assert_eq!(h.as_str(), "alice.bsky.social");
        assert_eq!(h.labels(), vec!["alice", "bsky", "social"]);
        let h = Handle::parse("@Example.COM").unwrap();
        assert_eq!(h.as_str(), "example.com");
        assert!(!h.is_bsky_social());
    }

    #[test]
    fn handles_from_paper() {
        for s in [
            "baatl.bsky.social",
            "aendra.com",
            "ff14labeler.bsky.social",
            "usounds.work",
            "someone.swifties.social",
            "someone.tired.io",
            "someone.vibes.cool",
            "user.github.io",
            "nytimes.com",
            "stanford.edu",
        ] {
            assert!(Handle::parse(s).is_ok(), "{s}");
        }
    }

    #[test]
    fn rejects_invalid() {
        for s in [
            "",
            "nodots",
            ".leading.dot",
            "trailing.dot.",
            "double..dot",
            "-dash.start.com",
            "dash.end-.com",
            "under_score.com",
            "spaces here.com",
            "numeric.tld.123",
            &("a".repeat(64) + ".com"),
            &(format!("{}.com", "a.".repeat(130))),
        ] {
            assert!(Handle::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn bsky_social_constructor() {
        let h = Handle::bsky_social("carol").unwrap();
        assert_eq!(h.as_str(), "carol.bsky.social");
        assert!(h.is_bsky_social());
        assert!(h.is_subdomain_of("bsky.social"));
        assert!(!h.is_subdomain_of("other.social"));
    }

    #[test]
    fn subdomain_matching_requires_label_boundary() {
        let h = Handle::parse("notbsky.social").unwrap();
        assert!(!h.is_bsky_social());
        let h = Handle::parse("foo.swifties.social").unwrap();
        assert!(h.is_subdomain_of("swifties.social"));
        assert!(!h.is_subdomain_of("ifties.social"));
    }

    #[test]
    fn ownership_proof_locations() {
        let h = Handle::parse("example.com").unwrap();
        assert_eq!(h.atproto_txt_name(), "_atproto.example.com");
        assert_eq!(
            h.well_known_url(),
            "https://example.com/.well-known/atproto-did"
        );
    }

    #[test]
    fn naive_registered_domain() {
        assert_eq!(
            Handle::parse("alice.bsky.social")
                .unwrap()
                .naive_registered_domain(),
            "bsky.social"
        );
        assert_eq!(
            Handle::parse("example.com")
                .unwrap()
                .naive_registered_domain(),
            "example.com"
        );
        assert_eq!(
            Handle::parse("a.b.c.d.example.org")
                .unwrap()
                .naive_registered_domain(),
            "example.org"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn parser_never_panics() {
        let mut rng = TestRng::new(0x4a4d);
        for _ in 0..500 {
            let s = rng.junk_string(80);
            let _ = Handle::parse(&s);
        }
    }

    #[test]
    fn valid_labels_always_parse() {
        let mut rng = TestRng::new(0x4a4e);
        for _ in 0..200 {
            let a = rng.lowercase(1, 11);
            let b = rng.lowercase(1, 11);
            let c = rng.lowercase(2, 7);
            let s = format!("{a}.{b}.{c}");
            let h = Handle::parse(&s).unwrap();
            assert_eq!(h.as_str(), s.as_str());
            assert_eq!(h.labels().len(), 3);
        }
    }
}
