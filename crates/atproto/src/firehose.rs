//! Firehose event frames.
//!
//! The Relay's firehose (`com.atproto.sync.subscribeRepos`) is a sequenced
//! stream of everything happening in the network: repository commits,
//! identity (DID document) updates, handle changes and account tombstones
//! (§3, Table 1). Each frame carries a monotonically increasing sequence
//! number which consumers use as a cursor for resuming and backfilling.

use crate::cbor::{self, Value};
use crate::cid::Cid;
use crate::datetime::Datetime;
use crate::did::Did;
use crate::error::{AtError, Result};
use crate::handle::Handle;
use crate::repo::{RecordOp, WriteAction};
use crate::tid::Tid;

/// A sequence number on the firehose.
pub type Seq = u64;

/// The payload of a firehose frame.
#[derive(Debug, Clone, PartialEq)]
pub enum EventBody {
    /// `#commit` — a repository commit with its record operations.
    Commit {
        /// Repository owner.
        did: Did,
        /// Commit CID.
        commit: Cid,
        /// Revision TID.
        rev: Tid,
        /// Record operations included in the commit.
        ops: Vec<RecordOp>,
        /// Approximate size of the carried blocks in bytes.
        blocks_bytes: usize,
        /// Whether the consumer is expected to re-sync (oversized commit).
        too_big: bool,
    },
    /// `#identity` — the DID document changed (e.g. PDS migration, key
    /// rotation); consumers should purge caches.
    Identity {
        /// The affected account.
        did: Did,
    },
    /// `#handle` — the account's handle changed.
    HandleChange {
        /// The affected account.
        did: Did,
        /// The new handle.
        handle: Handle,
    },
    /// `#tombstone` — the account was deleted.
    Tombstone {
        /// The deleted account.
        did: Did,
    },
    /// `#info` — informational message from the relay (e.g. outdated cursor).
    Info {
        /// Message name, e.g. `OutdatedCursor`.
        name: String,
    },
}

/// The coarse event type used for Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Repository commit.
    Commit,
    /// Identity update.
    Identity,
    /// User handle update.
    HandleChange,
    /// Repository tombstone.
    Tombstone,
    /// Relay informational message.
    Info,
}

impl EventKind {
    /// Human-readable name matching the paper's Table 1 rows.
    pub fn display_name(&self) -> &'static str {
        match self {
            EventKind::Commit => "Repo Commit",
            EventKind::Identity => "Identity Update",
            EventKind::HandleChange => "User Handle Update",
            EventKind::Tombstone => "Repo Tombstone",
            EventKind::Info => "Info",
        }
    }

    /// All kinds, in the order Table 1 lists them.
    pub fn all() -> [EventKind; 5] {
        [
            EventKind::Commit,
            EventKind::Identity,
            EventKind::HandleChange,
            EventKind::Tombstone,
            EventKind::Info,
        ]
    }
}

/// Width in bytes of the canonical CBOR encoding of an unsigned integer
/// (head byte plus argument), mirroring the encoder in [`crate::cbor`].
fn cbor_uint_width(value: u64) -> usize {
    match value {
        0..=23 => 1,
        24..=0xff => 2,
        0x100..=0xffff => 3,
        0x1_0000..=0xffff_ffff => 5,
        _ => 9,
    }
}

/// A full firehose frame: sequence number, relay receive time and body.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonically increasing sequence number assigned by the relay.
    pub seq: Seq,
    /// Relay-side receive timestamp.
    pub time: Datetime,
    /// Event payload.
    pub body: EventBody,
}

impl Event {
    /// The coarse kind of this event.
    pub fn kind(&self) -> EventKind {
        match &self.body {
            EventBody::Commit { .. } => EventKind::Commit,
            EventBody::Identity { .. } => EventKind::Identity,
            EventBody::HandleChange { .. } => EventKind::HandleChange,
            EventBody::Tombstone { .. } => EventKind::Tombstone,
            EventBody::Info { .. } => EventKind::Info,
        }
    }

    /// The account this event concerns (if any).
    pub fn did(&self) -> Option<&Did> {
        match &self.body {
            EventBody::Commit { did, .. }
            | EventBody::Identity { did }
            | EventBody::HandleChange { did, .. }
            | EventBody::Tombstone { did } => Some(did),
            EventBody::Info { .. } => None,
        }
    }

    /// Approximate wire size of the frame in bytes (used for the ≈30 GB/day
    /// firehose volume estimate in §9).
    ///
    /// The sequence number is counted at a canonical fixed width (9 bytes,
    /// the widest CBOR uint encoding) rather than at its variable encoded
    /// width. The live firehose assigns sequence numbers relay-side, so two
    /// observers of the same event can see different `seq` values; §9's
    /// volume estimate must not depend on the observer. This also keeps the
    /// estimate identical between a single-relay run and a sharded run whose
    /// per-shard relays assign smaller sequence numbers.
    pub fn wire_size(&self) -> usize {
        const CANONICAL_SEQ_BYTES: usize = 9;
        self.encode().len() - cbor_uint_width(self.seq) + CANONICAL_SEQ_BYTES
    }

    /// Encode the frame as DAG-CBOR.
    pub fn encode(&self) -> Vec<u8> {
        let body = match &self.body {
            EventBody::Commit {
                did,
                commit,
                rev,
                ops,
                blocks_bytes,
                too_big,
            } => Value::map([
                ("t", Value::text("#commit")),
                ("repo", Value::text(did.to_string())),
                ("commit", Value::Link(*commit)),
                ("rev", Value::text(rev.to_string())),
                ("tooBig", Value::Bool(*too_big)),
                ("blocksBytes", Value::Int(*blocks_bytes as i64)),
                (
                    "ops",
                    Value::Array(
                        ops.iter()
                            .map(|op| {
                                Value::map([
                                    ("action", Value::text(op.action.as_str())),
                                    ("path", Value::text(&op.key)),
                                    (
                                        "cid",
                                        match op.cid {
                                            Some(c) => Value::Link(c),
                                            None => Value::Null,
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            EventBody::Identity { did } => Value::map([
                ("t", Value::text("#identity")),
                ("did", Value::text(did.to_string())),
            ]),
            EventBody::HandleChange { did, handle } => Value::map([
                ("t", Value::text("#handle")),
                ("did", Value::text(did.to_string())),
                ("handle", Value::text(handle.as_str())),
            ]),
            EventBody::Tombstone { did } => Value::map([
                ("t", Value::text("#tombstone")),
                ("did", Value::text(did.to_string())),
            ]),
            EventBody::Info { name } => {
                Value::map([("t", Value::text("#info")), ("name", Value::text(name))])
            }
        };
        cbor::encode(&Value::map([
            ("seq", Value::Int(self.seq as i64)),
            ("time", Value::text(self.time.to_iso8601())),
            ("body", body),
        ]))
    }

    /// Decode a frame produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Event> {
        let value = cbor::decode(bytes)?;
        let seq = value
            .get("seq")
            .and_then(Value::as_int)
            .ok_or_else(|| AtError::CborDecode("frame missing seq".into()))?
            as Seq;
        let time = Datetime::parse_iso8601(
            value
                .get("time")
                .and_then(Value::as_text)
                .ok_or_else(|| AtError::CborDecode("frame missing time".into()))?,
        )?;
        let body_value = value
            .get("body")
            .ok_or_else(|| AtError::CborDecode("frame missing body".into()))?;
        let t = body_value
            .get("t")
            .and_then(Value::as_text)
            .ok_or_else(|| AtError::CborDecode("frame missing type".into()))?;
        let get_did = |key: &str| -> Result<Did> {
            Did::parse(
                body_value
                    .get(key)
                    .and_then(Value::as_text)
                    .ok_or_else(|| AtError::CborDecode(format!("frame missing {key}")))?,
            )
        };
        let body = match t {
            "#commit" => {
                let ops = body_value
                    .get("ops")
                    .and_then(Value::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|op| -> Result<RecordOp> {
                        let action = match op.get("action").and_then(Value::as_text) {
                            Some("create") => WriteAction::Create,
                            Some("update") => WriteAction::Update,
                            Some("delete") => WriteAction::Delete,
                            other => {
                                return Err(AtError::CborDecode(format!("bad op action {other:?}")))
                            }
                        };
                        Ok(RecordOp {
                            action,
                            key: op
                                .get("path")
                                .and_then(Value::as_text)
                                .ok_or_else(|| AtError::CborDecode("op missing path".into()))?
                                .to_string(),
                            cid: op.get("cid").and_then(Value::as_link).copied(),
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                EventBody::Commit {
                    did: get_did("repo")?,
                    commit: *body_value
                        .get("commit")
                        .and_then(Value::as_link)
                        .ok_or_else(|| AtError::CborDecode("commit frame missing cid".into()))?,
                    rev: Tid::parse(
                        body_value
                            .get("rev")
                            .and_then(Value::as_text)
                            .ok_or_else(|| {
                                AtError::CborDecode("commit frame missing rev".into())
                            })?,
                    )?,
                    ops,
                    blocks_bytes: body_value
                        .get("blocksBytes")
                        .and_then(Value::as_int)
                        .unwrap_or(0) as usize,
                    too_big: body_value
                        .get("tooBig")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                }
            }
            "#identity" => EventBody::Identity {
                did: get_did("did")?,
            },
            "#handle" => EventBody::HandleChange {
                did: get_did("did")?,
                handle: Handle::parse(
                    body_value
                        .get("handle")
                        .and_then(Value::as_text)
                        .ok_or_else(|| AtError::CborDecode("handle frame missing handle".into()))?,
                )?,
            },
            "#tombstone" => EventBody::Tombstone {
                did: get_did("did")?,
            },
            "#info" => EventBody::Info {
                name: body_value
                    .get("name")
                    .and_then(Value::as_text)
                    .unwrap_or("")
                    .to_string(),
            },
            other => return Err(AtError::CborDecode(format!("unknown frame type {other}"))),
        };
        Ok(Event { seq, time, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsid::known;

    fn did() -> Did {
        Did::plc_from_seed(b"alice")
    }

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 3, 6, 0, 0, 0).unwrap()
    }

    fn commit_event(seq: Seq) -> Event {
        Event {
            seq,
            time: now(),
            body: EventBody::Commit {
                did: did(),
                commit: Cid::for_cbor(b"commit"),
                rev: Tid::from_micros(1_000_000, 1),
                ops: vec![
                    RecordOp {
                        action: WriteAction::Create,
                        key: format!("{}/3kabcdefgh234", known::POST),
                        cid: Some(Cid::for_cbor(b"record")),
                    },
                    RecordOp {
                        action: WriteAction::Delete,
                        key: format!("{}/3kabcdefgh235", known::LIKE),
                        cid: None,
                    },
                ],
                blocks_bytes: 512,
                too_big: false,
            },
        }
    }

    #[test]
    fn commit_frame_roundtrip() {
        let event = commit_event(42);
        let decoded = Event::decode(&event.encode()).unwrap();
        assert_eq!(decoded, event);
        assert_eq!(decoded.kind(), EventKind::Commit);
        assert_eq!(decoded.did(), Some(&did()));
        assert!(decoded.wire_size() > 100);
    }

    #[test]
    fn other_frames_roundtrip() {
        let events = [
            Event {
                seq: 1,
                time: now(),
                body: EventBody::Identity { did: did() },
            },
            Event {
                seq: 2,
                time: now(),
                body: EventBody::HandleChange {
                    did: did(),
                    handle: Handle::parse("alice.example.com").unwrap(),
                },
            },
            Event {
                seq: 3,
                time: now(),
                body: EventBody::Tombstone { did: did() },
            },
            Event {
                seq: 4,
                time: now(),
                body: EventBody::Info {
                    name: "OutdatedCursor".into(),
                },
            },
        ];
        for event in events {
            let decoded = Event::decode(&event.encode()).unwrap();
            assert_eq!(decoded, event);
        }
    }

    #[test]
    fn wire_size_is_independent_of_sequence_number() {
        // Two observers (or two shards) can assign different seqs to the
        // same event; §9's volume estimate must not see a difference.
        let small = commit_event(3);
        let large = commit_event(1_000_000_007);
        assert_eq!(small.wire_size(), large.wire_size());
        assert!(small.encode().len() < large.encode().len());
        assert!(small.wire_size() >= small.encode().len());
    }

    fn single_op_commit(collection: &str, action: WriteAction) -> Event {
        Event {
            seq: 7,
            time: now(),
            body: EventBody::Commit {
                did: did(),
                commit: Cid::for_cbor(b"commit"),
                rev: Tid::from_micros(1_000_000, 1),
                ops: vec![RecordOp {
                    action,
                    key: format!("{collection}/3kabcdefgh234"),
                    cid: match action {
                        WriteAction::Delete => None,
                        _ => Some(Cid::for_cbor(b"record")),
                    },
                }],
                blocks_bytes: 512,
                too_big: false,
            },
        }
    }

    #[test]
    fn wire_size_is_pinned_per_event_variant() {
        // One case per event variant the workload emits, with the exact
        // frame size pinned. The §10 observatory attributes padding deltas
        // to these accounting numbers; if an encoding change moves them,
        // this table must move with it — knowingly.
        let labels_batch = Event {
            seq: 7,
            time: now(),
            body: EventBody::Commit {
                did: did(),
                commit: Cid::for_cbor(b"commit"),
                rev: Tid::from_micros(1_000_000, 1),
                ops: (0..3)
                    .map(|i| RecordOp {
                        action: WriteAction::Create,
                        key: format!("{}/3kabcdefgh23{i}", known::LABELER_SERVICE),
                        cid: Some(Cid::for_cbor(&[i])),
                    })
                    .collect(),
                blocks_bytes: 2048,
                too_big: false,
            },
        };
        let cases: Vec<(&str, Event, usize)> = vec![
            (
                "post create",
                single_op_commit(known::POST, WriteAction::Create),
                288,
            ),
            (
                "like create",
                single_op_commit(known::LIKE, WriteAction::Create),
                288,
            ),
            (
                "follow create",
                single_op_commit(known::FOLLOW, WriteAction::Create),
                291,
            ),
            (
                "repost create",
                single_op_commit(known::REPOST, WriteAction::Create),
                290,
            ),
            (
                "post delete",
                single_op_commit(known::POST, WriteAction::Delete),
                248,
            ),
            (
                "profile update",
                single_op_commit(known::PROFILE, WriteAction::Update),
                292,
            ),
            ("labels batch", labels_batch, 504),
            (
                "identity",
                Event {
                    seq: 7,
                    time: now(),
                    body: EventBody::Identity { did: did() },
                },
                96,
            ),
            (
                "handle change",
                Event {
                    seq: 7,
                    time: now(),
                    body: EventBody::HandleChange {
                        did: did(),
                        handle: Handle::parse("alice.example.com").unwrap(),
                    },
                },
                119,
            ),
            (
                "tombstone",
                Event {
                    seq: 7,
                    time: now(),
                    body: EventBody::Tombstone { did: did() },
                },
                97,
            ),
            (
                "info",
                Event {
                    seq: 7,
                    time: now(),
                    body: EventBody::Info {
                        name: "OutdatedCursor".into(),
                    },
                },
                74,
            ),
        ];
        let got: Vec<(&str, usize)> = cases
            .iter()
            .map(|(name, event, _)| (*name, event.wire_size()))
            .collect();
        let want: Vec<(&str, usize)> = cases.iter().map(|(name, _, size)| (*name, *size)).collect();
        assert_eq!(got, want);
        // The canonical size is the variable encoding with the seq counted
        // at its fixed 9-byte width (seq 7 encodes in 1 byte).
        for (name, event, _) in &cases {
            assert_eq!(event.wire_size(), event.encode().len() + 8, "{name}");
        }
    }

    #[test]
    fn kinds_match_table1_rows() {
        assert_eq!(EventKind::Commit.display_name(), "Repo Commit");
        assert_eq!(EventKind::Identity.display_name(), "Identity Update");
        assert_eq!(EventKind::HandleChange.display_name(), "User Handle Update");
        assert_eq!(EventKind::Tombstone.display_name(), "Repo Tombstone");
        assert_eq!(EventKind::all().len(), 5);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Event::decode(b"not cbor").is_err());
        let missing_body = cbor::encode(&Value::map([("seq", Value::Int(1))]));
        assert!(Event::decode(&missing_body).is_err());
        let bad_type = cbor::encode(&Value::map([
            ("seq", Value::Int(1)),
            ("time", Value::text(now().to_iso8601())),
            ("body", Value::map([("t", Value::text("#unknown"))])),
        ]));
        assert!(Event::decode(&bad_type).is_err());
    }

    #[test]
    fn info_events_have_no_did() {
        let event = Event {
            seq: 9,
            time: now(),
            body: EventBody::Info { name: "x".into() },
        };
        assert!(event.did().is_none());
        assert_eq!(event.kind(), EventKind::Info);
    }
}
