//! Moderation labels.
//!
//! Labels are short strings attached by Labelers to network objects — posts,
//! whole accounts, or profile media (§2, §6). Reserved values prefixed with
//! `!` have hardcoded behaviour and are only honoured when issued by the
//! official Bluesky Labeler. A label can be rescinded by re-publishing it
//! with the negation flag set.

use crate::aturi::AtUri;
use crate::cbor::{self, Value};
use crate::datetime::Datetime;
use crate::did::Did;
use crate::error::{AtError, Result};

/// What a label is attached to (Table 4 of the paper groups by this).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelTarget {
    /// A record, identified by its `at://` URI (virtually always a post).
    Record(AtUri),
    /// A whole account, identified by DID.
    Account(Did),
    /// An account's profile picture or banner.
    ProfileMedia(Did),
}

/// The coarse target type used by Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelTargetKind {
    /// A post (or other record).
    Post,
    /// A whole account.
    Account,
    /// A banner or avatar image.
    BannerAvatar,
}

impl LabelTargetKind {
    /// Display name matching Table 4.
    pub fn display_name(&self) -> &'static str {
        match self {
            LabelTargetKind::Post => "Post",
            LabelTargetKind::Account => "Account",
            LabelTargetKind::BannerAvatar => "Banner/Avatar",
        }
    }
}

impl LabelTarget {
    /// The coarse kind of this target.
    pub fn kind(&self) -> LabelTargetKind {
        match self {
            LabelTarget::Record(_) => LabelTargetKind::Post,
            LabelTarget::Account(_) => LabelTargetKind::Account,
            LabelTarget::ProfileMedia(_) => LabelTargetKind::BannerAvatar,
        }
    }

    /// Canonical string form (`at://` URI or DID).
    pub fn uri(&self) -> String {
        match self {
            LabelTarget::Record(uri) => uri.to_string(),
            LabelTarget::Account(did) => did.to_string(),
            LabelTarget::ProfileMedia(did) => format!("{did}#media"),
        }
    }

    /// Parse the canonical string form.
    pub fn parse(s: &str) -> Result<LabelTarget> {
        if let Some(did_str) = s.strip_suffix("#media") {
            return Ok(LabelTarget::ProfileMedia(Did::parse(did_str)?));
        }
        if s.starts_with("at://") {
            return Ok(LabelTarget::Record(AtUri::parse(s)?));
        }
        Ok(LabelTarget::Account(Did::parse(s)?))
    }

    /// The DID of the account that owns the target.
    pub fn subject_did(&self) -> &Did {
        match self {
            LabelTarget::Record(uri) => uri.did(),
            LabelTarget::Account(did) | LabelTarget::ProfileMedia(did) => did,
        }
    }
}

/// Reserved label values with hardcoded behaviour (valid only from the
/// official Bluesky Labeler).
pub const RESERVED_LABELS: &[&str] = &[
    "!hide",
    "!warn",
    "!takedown",
    "!no-promote",
    "!no-unauthenticated",
];

/// Label values with hardcoded age-gating behaviour that any Labeler may emit.
pub const ADULT_CONTENT_LABELS: &[&str] = &["porn", "sexual", "graphic-media", "nudity"];

/// Whether a value is one of the reserved `!` labels.
pub fn is_reserved_value(value: &str) -> bool {
    value.starts_with('!')
}

/// Validate a label value: lowercase kebab-case, optionally `!`-prefixed.
pub fn validate_value(value: &str) -> Result<()> {
    let body = value.strip_prefix('!').unwrap_or(value);
    if body.is_empty()
        || body.len() > 128
        || !body
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        || body.starts_with('-')
        || body.ends_with('-')
    {
        return Err(AtError::InvalidLabel(value.to_string()));
    }
    Ok(())
}

/// A single label interaction as published on a Labeler's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// The Labeler that issued the label.
    pub src: Did,
    /// What the label is attached to.
    pub target: LabelTarget,
    /// The label value, e.g. `porn` or `no-alt-text`.
    pub value: String,
    /// True when this interaction rescinds a previously issued label.
    pub negated: bool,
    /// When the Labeler issued it.
    pub created_at: Datetime,
}

impl Label {
    /// Create a (validated) label.
    pub fn new(
        src: Did,
        target: LabelTarget,
        value: impl Into<String>,
        created_at: Datetime,
    ) -> Result<Label> {
        let value = value.into();
        validate_value(&value)?;
        Ok(Label {
            src,
            target,
            value,
            negated: false,
            created_at,
        })
    }

    /// Create the negation of this label (same source, target and value).
    pub fn negation(&self, at: Datetime) -> Label {
        Label {
            negated: true,
            created_at: at,
            ..self.clone()
        }
    }

    /// The deduplication key `(src, target, value)` used when applying
    /// negations.
    pub fn key(&self) -> (String, String, String) {
        (self.src.to_string(), self.target.uri(), self.value.clone())
    }

    /// Encode as DAG-CBOR (one frame on a label stream).
    pub fn encode(&self) -> Vec<u8> {
        cbor::encode(&Value::map([
            ("src", Value::text(self.src.to_string())),
            ("uri", Value::text(self.target.uri())),
            ("val", Value::text(&self.value)),
            ("neg", Value::Bool(self.negated)),
            ("cts", Value::text(self.created_at.to_iso8601())),
        ]))
    }

    /// Decode a frame produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Label> {
        let value = cbor::decode(bytes)?;
        let text = |key: &str| -> Result<&str> {
            value
                .get(key)
                .and_then(Value::as_text)
                .ok_or_else(|| AtError::InvalidLabel(format!("missing field {key}")))
        };
        let label = Label {
            src: Did::parse(text("src")?)?,
            target: LabelTarget::parse(text("uri")?)?,
            value: text("val")?.to_string(),
            negated: value.get("neg").and_then(Value::as_bool).unwrap_or(false),
            created_at: Datetime::parse_iso8601(text("cts")?)?,
        };
        validate_value(&label.value)?;
        Ok(label)
    }
}

/// Apply a stream of label interactions in order, honouring negations, and
/// return the set of currently effective labels.
pub fn effective_labels(stream: &[Label]) -> Vec<Label> {
    use std::collections::BTreeMap;
    let mut state: BTreeMap<(String, String, String), Label> = BTreeMap::new();
    for label in stream {
        if label.negated {
            state.remove(&label.key());
        } else {
            state.insert(label.key(), label.clone());
        }
    }
    state.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsid::known;
    use crate::Nsid;

    fn labeler() -> Did {
        Did::plc_from_seed(b"labeler")
    }

    fn alice() -> Did {
        Did::plc_from_seed(b"alice")
    }

    fn post_target() -> LabelTarget {
        LabelTarget::Record(AtUri::record(
            alice(),
            Nsid::parse(known::POST).unwrap(),
            "3kabcdefgh234",
        ))
    }

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 1, 10, 0, 0).unwrap()
    }

    #[test]
    fn value_validation() {
        for ok in [
            "porn",
            "no-alt-text",
            "tenor-gif",
            "!takedown",
            "spam",
            "ai-imagery",
        ] {
            assert!(validate_value(ok).is_ok(), "{ok}");
        }
        for bad in ["", "!", "UPPER", "has space", "-lead", "trail-", "ünicode"] {
            assert!(validate_value(bad).is_err(), "{bad}");
        }
        assert!(is_reserved_value("!takedown"));
        assert!(!is_reserved_value("porn"));
        assert!(RESERVED_LABELS.iter().all(|v| validate_value(v).is_ok()));
        assert!(ADULT_CONTENT_LABELS
            .iter()
            .all(|v| validate_value(v).is_ok()));
    }

    #[test]
    fn label_roundtrip_all_target_kinds() {
        let targets = [
            post_target(),
            LabelTarget::Account(alice()),
            LabelTarget::ProfileMedia(alice()),
        ];
        for target in targets {
            let label = Label::new(labeler(), target.clone(), "spam", now()).unwrap();
            let decoded = Label::decode(&label.encode()).unwrap();
            assert_eq!(decoded, label);
            assert_eq!(decoded.target.kind(), target.kind());
            assert_eq!(decoded.target.subject_did(), &alice());
        }
    }

    #[test]
    fn target_kind_display_names_match_table4() {
        assert_eq!(LabelTargetKind::Post.display_name(), "Post");
        assert_eq!(LabelTargetKind::Account.display_name(), "Account");
        assert_eq!(
            LabelTargetKind::BannerAvatar.display_name(),
            "Banner/Avatar"
        );
    }

    #[test]
    fn negation_removes_effective_label() {
        let label = Label::new(labeler(), post_target(), "porn", now()).unwrap();
        let other = Label::new(labeler(), post_target(), "sexual", now()).unwrap();
        let stream = vec![
            label.clone(),
            other.clone(),
            label.negation(now().plus_seconds(60)),
        ];
        let effective = effective_labels(&stream);
        assert_eq!(effective, vec![other]);
        // Re-applying after negation restores it.
        let stream2 = vec![
            label.clone(),
            label.negation(now().plus_seconds(60)),
            label.clone(),
        ];
        assert_eq!(effective_labels(&stream2).len(), 1);
    }

    #[test]
    fn negation_only_affects_matching_source() {
        let official = Label::new(labeler(), post_target(), "spam", now()).unwrap();
        let community = Label::new(
            Did::plc_from_seed(b"community"),
            post_target(),
            "spam",
            now(),
        )
        .unwrap();
        let stream = vec![
            official.clone(),
            community.clone(),
            official.negation(now().plus_seconds(1)),
        ];
        let effective = effective_labels(&stream);
        assert_eq!(effective, vec![community]);
    }

    #[test]
    fn invalid_values_rejected_at_construction_and_decode() {
        assert!(Label::new(labeler(), post_target(), "Bad Value", now()).is_err());
        let mut label = Label::new(labeler(), post_target(), "ok-value", now()).unwrap();
        label.value = "NOT OK".into();
        assert!(Label::decode(&label.encode()).is_err());
    }

    #[test]
    fn target_parse_rejects_garbage() {
        assert!(LabelTarget::parse("not a target").is_err());
        assert!(LabelTarget::parse("at://garbage").is_err());
        // Roundtrip of every kind.
        for t in [
            post_target(),
            LabelTarget::Account(alice()),
            LabelTarget::ProfileMedia(alice()),
        ] {
            assert_eq!(LabelTarget::parse(&t.uri()).unwrap(), t);
        }
    }
}
