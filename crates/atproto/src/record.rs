//! Lexicon record types.
//!
//! Repositories hold users' public actions — posts, likes, follows, blocks,
//! reposts, profiles — plus the declaration records for Feed Generators and
//! Labelers (§2). Records are typed by NSIDs and encoded as DAG-CBOR. The
//! `Unknown` variant carries records for third-party lexicons (e.g. the
//! WhiteWind blog entries observed in §4, "Non-Bluesky content").

use crate::aturi::AtUri;
use crate::cbor::Value;
use crate::datetime::Datetime;
use crate::did::Did;
use crate::error::{AtError, Result};
use crate::nsid::{known, Nsid};

/// Ground-truth classification of an attached media item. The simulated
/// Labelers classify media from these kinds the same way the real ones run
/// image classifiers (§6: screenshot labeler, AI-imagery labeler, GIF
/// labeler, NSFW detection by the Bluesky labeler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaKind {
    /// An ordinary photograph.
    Photo,
    /// Original artwork (the art community is prominent on Bluesky, §7).
    Artwork,
    /// A screenshot of a post on Twitter/X.
    ScreenshotTwitter,
    /// A screenshot of a Bluesky post.
    ScreenshotBluesky,
    /// A screenshot of something else.
    ScreenshotOther,
    /// A reaction GIF served from Tenor.
    GifTenor,
    /// Any other animated GIF.
    GifOther,
    /// AI-generated imagery.
    AiGenerated,
    /// Sexually explicit media.
    Adult,
    /// Graphic / gore media.
    Graphic,
}

impl MediaKind {
    /// Stable string tag used for CBOR encoding.
    pub fn as_str(&self) -> &'static str {
        match self {
            MediaKind::Photo => "photo",
            MediaKind::Artwork => "artwork",
            MediaKind::ScreenshotTwitter => "screenshot-twitter",
            MediaKind::ScreenshotBluesky => "screenshot-bluesky",
            MediaKind::ScreenshotOther => "screenshot-other",
            MediaKind::GifTenor => "gif-tenor",
            MediaKind::GifOther => "gif-other",
            MediaKind::AiGenerated => "ai-generated",
            MediaKind::Adult => "adult",
            MediaKind::Graphic => "graphic",
        }
    }

    /// Parse the string tag.
    pub fn parse(s: &str) -> Result<MediaKind> {
        Ok(match s {
            "photo" => MediaKind::Photo,
            "artwork" => MediaKind::Artwork,
            "screenshot-twitter" => MediaKind::ScreenshotTwitter,
            "screenshot-bluesky" => MediaKind::ScreenshotBluesky,
            "screenshot-other" => MediaKind::ScreenshotOther,
            "gif-tenor" => MediaKind::GifTenor,
            "gif-other" => MediaKind::GifOther,
            "ai-generated" => MediaKind::AiGenerated,
            "adult" => MediaKind::Adult,
            "graphic" => MediaKind::Graphic,
            _ => return Err(AtError::InvalidRecord(format!("unknown media kind {s}"))),
        })
    }

    /// All media kinds (useful for generators and exhaustive tests).
    pub fn all() -> [MediaKind; 10] {
        [
            MediaKind::Photo,
            MediaKind::Artwork,
            MediaKind::ScreenshotTwitter,
            MediaKind::ScreenshotBluesky,
            MediaKind::ScreenshotOther,
            MediaKind::GifTenor,
            MediaKind::GifOther,
            MediaKind::AiGenerated,
            MediaKind::Adult,
            MediaKind::Graphic,
        ]
    }
}

/// A single attached media item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageEmbed {
    /// Alternative text, if the author provided any.
    pub alt: Option<String>,
    /// Ground-truth content class.
    pub kind: MediaKind,
}

/// Post embeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Embed {
    /// One or more images / GIFs.
    Images(Vec<ImageEmbed>),
    /// An external link card.
    External {
        /// The linked URL.
        uri: String,
    },
    /// A quote of another record.
    Record(AtUri),
}

/// `app.bsky.feed.post`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostRecord {
    /// Post body text.
    pub text: String,
    /// Self-reported creation time (may predate the platform, §7).
    pub created_at: Datetime,
    /// Self-assigned BCP-47 language tags.
    pub langs: Vec<String>,
    /// Parent post when this is a reply.
    pub reply_parent: Option<AtUri>,
    /// Attached embed.
    pub embed: Option<Embed>,
    /// Hashtags (used e.g. by the AI-imagery labeler, §6).
    pub tags: Vec<String>,
}

impl PostRecord {
    /// A minimal text-only post.
    pub fn simple(text: impl Into<String>, lang: &str, created_at: Datetime) -> PostRecord {
        PostRecord {
            text: text.into(),
            created_at,
            langs: vec![lang.to_string()],
            reply_parent: None,
            embed: None,
            tags: Vec::new(),
        }
    }

    /// Whether the post has attached media.
    pub fn has_media(&self) -> bool {
        matches!(self.embed, Some(Embed::Images(_)))
    }

    /// Whether the post has attached media missing alt text.
    pub fn has_media_missing_alt(&self) -> bool {
        match &self.embed {
            Some(Embed::Images(images)) => images.iter().any(|i| i.alt.is_none()),
            _ => false,
        }
    }

    /// Iterate over attached media kinds.
    pub fn media_kinds(&self) -> Vec<MediaKind> {
        match &self.embed {
            Some(Embed::Images(images)) => images.iter().map(|i| i.kind).collect(),
            _ => Vec::new(),
        }
    }
}

/// `app.bsky.feed.like`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikeRecord {
    /// The liked record (post or feed generator).
    pub subject: AtUri,
    /// Creation time.
    pub created_at: Datetime,
}

/// `app.bsky.feed.repost`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepostRecord {
    /// The reposted post.
    pub subject: AtUri,
    /// Creation time.
    pub created_at: Datetime,
}

/// `app.bsky.graph.follow`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowRecord {
    /// The followed account.
    pub subject: Did,
    /// Creation time.
    pub created_at: Datetime,
}

/// `app.bsky.graph.block`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRecord {
    /// The blocked account.
    pub subject: Did,
    /// Creation time.
    pub created_at: Datetime,
}

/// `app.bsky.actor.profile`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRecord {
    /// Display name.
    pub display_name: String,
    /// Bio / description.
    pub description: String,
    /// Whether an avatar image is set.
    pub has_avatar: bool,
    /// Whether a banner image is set.
    pub has_banner: bool,
    /// Creation time.
    pub created_at: Datetime,
}

/// `app.bsky.feed.generator` — a Feed Generator declaration (§2, §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedGeneratorRecord {
    /// DID of the service hosting the feed skeleton endpoint.
    pub service_did: Did,
    /// Human-readable feed name.
    pub display_name: String,
    /// Feed description (analysed for language and keywords in §7).
    pub description: String,
    /// Creation time.
    pub created_at: Datetime,
}

/// One label value a Labeler declares, with its default client behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelValueDefinition {
    /// The label value, e.g. `spoiler`.
    pub value: String,
    /// Default severity (`inform`, `alert`, or `none`).
    pub severity: String,
    /// What the label blurs by default (`content`, `media`, or `none`).
    pub blurs: String,
}

/// `app.bsky.labeler.service` — a Labeler declaration (§2, §6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelerServiceRecord {
    /// Declared label values and their default behaviour.
    pub policies: Vec<LabelValueDefinition>,
    /// Creation time.
    pub created_at: Datetime,
}

/// A record in a lexicon this crate does not model (e.g. WhiteWind).
#[derive(Debug, Clone, PartialEq)]
pub struct UnknownRecord {
    /// The record's `$type`.
    pub record_type: Nsid,
    /// The raw decoded value.
    pub value: Value,
}

/// Any repository record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `app.bsky.feed.post`
    Post(PostRecord),
    /// `app.bsky.feed.like`
    Like(LikeRecord),
    /// `app.bsky.feed.repost`
    Repost(RepostRecord),
    /// `app.bsky.graph.follow`
    Follow(FollowRecord),
    /// `app.bsky.graph.block`
    Block(BlockRecord),
    /// `app.bsky.actor.profile`
    Profile(ProfileRecord),
    /// `app.bsky.feed.generator`
    FeedGenerator(FeedGeneratorRecord),
    /// `app.bsky.labeler.service`
    LabelerService(LabelerServiceRecord),
    /// Any other lexicon.
    Unknown(UnknownRecord),
}

impl Record {
    /// The collection NSID this record belongs to.
    pub fn collection(&self) -> Nsid {
        let s = match self {
            Record::Post(_) => known::POST,
            Record::Like(_) => known::LIKE,
            Record::Repost(_) => known::REPOST,
            Record::Follow(_) => known::FOLLOW,
            Record::Block(_) => known::BLOCK,
            Record::Profile(_) => known::PROFILE,
            Record::FeedGenerator(_) => known::FEED_GENERATOR,
            Record::LabelerService(_) => known::LABELER_SERVICE,
            Record::Unknown(u) => return u.record_type.clone(),
        };
        Nsid::parse(s).expect("known NSIDs are valid")
    }

    /// Whether this record's lexicon is part of the Bluesky application.
    pub fn is_bluesky_lexicon(&self) -> bool {
        self.collection().is_bluesky_lexicon()
    }

    /// The record's self-reported creation time, when the lexicon has one.
    pub fn created_at(&self) -> Option<Datetime> {
        match self {
            Record::Post(r) => Some(r.created_at),
            Record::Like(r) => Some(r.created_at),
            Record::Repost(r) => Some(r.created_at),
            Record::Follow(r) => Some(r.created_at),
            Record::Block(r) => Some(r.created_at),
            Record::Profile(r) => Some(r.created_at),
            Record::FeedGenerator(r) => Some(r.created_at),
            Record::LabelerService(r) => Some(r.created_at),
            Record::Unknown(u) => u
                .value
                .get("createdAt")
                .and_then(Value::as_text)
                .and_then(|s| Datetime::parse_iso8601(s).ok()),
        }
    }

    /// Encode to the CBOR data model.
    pub fn to_value(&self) -> Value {
        match self {
            Record::Post(r) => {
                let mut fields = vec![
                    ("$type".to_string(), Value::text(known::POST)),
                    ("text".to_string(), Value::text(&r.text)),
                    (
                        "createdAt".to_string(),
                        Value::text(r.created_at.to_iso8601()),
                    ),
                    (
                        "langs".to_string(),
                        Value::Array(r.langs.iter().map(Value::text).collect()),
                    ),
                    (
                        "tags".to_string(),
                        Value::Array(r.tags.iter().map(Value::text).collect()),
                    ),
                ];
                if let Some(parent) = &r.reply_parent {
                    fields.push((
                        "reply".to_string(),
                        Value::map([("parent", Value::text(parent.to_string()))]),
                    ));
                }
                if let Some(embed) = &r.embed {
                    fields.push(("embed".to_string(), embed_to_value(embed)));
                }
                Value::map(fields)
            }
            Record::Like(r) => Value::map([
                ("$type", Value::text(known::LIKE)),
                ("subject", Value::text(r.subject.to_string())),
                ("createdAt", Value::text(r.created_at.to_iso8601())),
            ]),
            Record::Repost(r) => Value::map([
                ("$type", Value::text(known::REPOST)),
                ("subject", Value::text(r.subject.to_string())),
                ("createdAt", Value::text(r.created_at.to_iso8601())),
            ]),
            Record::Follow(r) => Value::map([
                ("$type", Value::text(known::FOLLOW)),
                ("subject", Value::text(r.subject.to_string())),
                ("createdAt", Value::text(r.created_at.to_iso8601())),
            ]),
            Record::Block(r) => Value::map([
                ("$type", Value::text(known::BLOCK)),
                ("subject", Value::text(r.subject.to_string())),
                ("createdAt", Value::text(r.created_at.to_iso8601())),
            ]),
            Record::Profile(r) => Value::map([
                ("$type", Value::text(known::PROFILE)),
                ("displayName", Value::text(&r.display_name)),
                ("description", Value::text(&r.description)),
                ("hasAvatar", Value::Bool(r.has_avatar)),
                ("hasBanner", Value::Bool(r.has_banner)),
                ("createdAt", Value::text(r.created_at.to_iso8601())),
            ]),
            Record::FeedGenerator(r) => Value::map([
                ("$type", Value::text(known::FEED_GENERATOR)),
                ("did", Value::text(r.service_did.to_string())),
                ("displayName", Value::text(&r.display_name)),
                ("description", Value::text(&r.description)),
                ("createdAt", Value::text(r.created_at.to_iso8601())),
            ]),
            Record::LabelerService(r) => Value::map([
                ("$type", Value::text(known::LABELER_SERVICE)),
                (
                    "policies",
                    Value::Array(
                        r.policies
                            .iter()
                            .map(|p| {
                                Value::map([
                                    ("value", Value::text(&p.value)),
                                    ("severity", Value::text(&p.severity)),
                                    ("blurs", Value::text(&p.blurs)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("createdAt", Value::text(r.created_at.to_iso8601())),
            ]),
            Record::Unknown(u) => {
                // Ensure the $type field is present and correct.
                let mut map = match &u.value {
                    Value::Map(m) => m.clone(),
                    other => {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("value".to_string(), other.clone());
                        m
                    }
                };
                map.insert("$type".to_string(), Value::text(u.record_type.as_str()));
                Value::Map(map)
            }
        }
    }

    /// Decode from the CBOR data model, dispatching on `$type`.
    pub fn from_value(value: &Value) -> Result<Record> {
        let type_str = value
            .get("$type")
            .and_then(Value::as_text)
            .ok_or_else(|| AtError::InvalidRecord("missing $type".into()))?;
        let get_text = |key: &str| -> Result<&str> {
            value
                .get(key)
                .and_then(Value::as_text)
                .ok_or_else(|| AtError::InvalidRecord(format!("missing field {key}")))
        };
        let get_datetime =
            |key: &str| -> Result<Datetime> { Datetime::parse_iso8601(get_text(key)?) };
        match type_str {
            known::POST => {
                let langs = value
                    .get("langs")
                    .and_then(Value::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Value::as_text)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                let tags = value
                    .get("tags")
                    .and_then(Value::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Value::as_text)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                let reply_parent = match value.get("reply").and_then(|r| r.get("parent")) {
                    Some(v) => Some(AtUri::parse(v.as_text().ok_or_else(|| {
                        AtError::InvalidRecord("reply.parent not text".into())
                    })?)?),
                    None => None,
                };
                let embed = match value.get("embed") {
                    Some(v) => Some(embed_from_value(v)?),
                    None => None,
                };
                Ok(Record::Post(PostRecord {
                    text: get_text("text")?.to_string(),
                    created_at: get_datetime("createdAt")?,
                    langs,
                    reply_parent,
                    embed,
                    tags,
                }))
            }
            known::LIKE => Ok(Record::Like(LikeRecord {
                subject: AtUri::parse(get_text("subject")?)?,
                created_at: get_datetime("createdAt")?,
            })),
            known::REPOST => Ok(Record::Repost(RepostRecord {
                subject: AtUri::parse(get_text("subject")?)?,
                created_at: get_datetime("createdAt")?,
            })),
            known::FOLLOW => Ok(Record::Follow(FollowRecord {
                subject: Did::parse(get_text("subject")?)?,
                created_at: get_datetime("createdAt")?,
            })),
            known::BLOCK => Ok(Record::Block(BlockRecord {
                subject: Did::parse(get_text("subject")?)?,
                created_at: get_datetime("createdAt")?,
            })),
            known::PROFILE => Ok(Record::Profile(ProfileRecord {
                display_name: get_text("displayName")?.to_string(),
                description: get_text("description")?.to_string(),
                has_avatar: value
                    .get("hasAvatar")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                has_banner: value
                    .get("hasBanner")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                created_at: get_datetime("createdAt")?,
            })),
            known::FEED_GENERATOR => Ok(Record::FeedGenerator(FeedGeneratorRecord {
                service_did: Did::parse(get_text("did")?)?,
                display_name: get_text("displayName")?.to_string(),
                description: get_text("description")?.to_string(),
                created_at: get_datetime("createdAt")?,
            })),
            known::LABELER_SERVICE => {
                let policies = value
                    .get("policies")
                    .and_then(Value::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|p| -> Result<LabelValueDefinition> {
                        Ok(LabelValueDefinition {
                            value: p
                                .get("value")
                                .and_then(Value::as_text)
                                .ok_or_else(|| {
                                    AtError::InvalidRecord("policy missing value".into())
                                })?
                                .to_string(),
                            severity: p
                                .get("severity")
                                .and_then(Value::as_text)
                                .unwrap_or("inform")
                                .to_string(),
                            blurs: p
                                .get("blurs")
                                .and_then(Value::as_text)
                                .unwrap_or("none")
                                .to_string(),
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Record::LabelerService(LabelerServiceRecord {
                    policies,
                    created_at: get_datetime("createdAt")?,
                }))
            }
            other => Ok(Record::Unknown(UnknownRecord {
                record_type: Nsid::parse(other)?,
                value: value.clone(),
            })),
        }
    }

    /// Encode to DAG-CBOR bytes.
    pub fn to_cbor(&self) -> Vec<u8> {
        crate::cbor::encode(&self.to_value())
    }

    /// Decode from DAG-CBOR bytes.
    pub fn from_cbor(bytes: &[u8]) -> Result<Record> {
        Record::from_value(&crate::cbor::decode(bytes)?)
    }
}

fn embed_to_value(embed: &Embed) -> Value {
    match embed {
        Embed::Images(images) => Value::map([
            ("kind", Value::text("images")),
            (
                "images",
                Value::Array(
                    images
                        .iter()
                        .map(|img| {
                            Value::map([
                                (
                                    "alt",
                                    match &img.alt {
                                        Some(a) => Value::text(a),
                                        None => Value::Null,
                                    },
                                ),
                                ("mediaKind", Value::text(img.kind.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Embed::External { uri } => {
            Value::map([("kind", Value::text("external")), ("uri", Value::text(uri))])
        }
        Embed::Record(uri) => Value::map([
            ("kind", Value::text("record")),
            ("record", Value::text(uri.to_string())),
        ]),
    }
}

fn embed_from_value(value: &Value) -> Result<Embed> {
    let kind = value
        .get("kind")
        .and_then(Value::as_text)
        .ok_or_else(|| AtError::InvalidRecord("embed missing kind".into()))?;
    match kind {
        "images" => {
            let images = value
                .get("images")
                .and_then(Value::as_array)
                .ok_or_else(|| AtError::InvalidRecord("images embed missing images".into()))?
                .iter()
                .map(|img| -> Result<ImageEmbed> {
                    let alt = match img.get("alt") {
                        Some(Value::Text(s)) => Some(s.clone()),
                        _ => None,
                    };
                    let kind = MediaKind::parse(
                        img.get("mediaKind")
                            .and_then(Value::as_text)
                            .unwrap_or("photo"),
                    )?;
                    Ok(ImageEmbed { alt, kind })
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(Embed::Images(images))
        }
        "external" => Ok(Embed::External {
            uri: value
                .get("uri")
                .and_then(Value::as_text)
                .ok_or_else(|| AtError::InvalidRecord("external embed missing uri".into()))?
                .to_string(),
        }),
        "record" => Ok(Embed::Record(AtUri::parse(
            value
                .get("record")
                .and_then(Value::as_text)
                .ok_or_else(|| AtError::InvalidRecord("record embed missing record".into()))?,
        )?)),
        other => Err(AtError::InvalidRecord(format!(
            "unknown embed kind {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn when() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 24, 12, 0, 0).unwrap()
    }

    fn alice() -> Did {
        Did::plc_from_seed(b"alice")
    }

    fn post_uri() -> AtUri {
        AtUri::record(alice(), Nsid::parse(known::POST).unwrap(), "3kdgeujwlq32y")
    }

    #[test]
    fn post_roundtrip_simple() {
        let record = Record::Post(PostRecord::simple("hello world", "en", when()));
        let back = Record::from_cbor(&record.to_cbor()).unwrap();
        assert_eq!(back, record);
        assert_eq!(record.collection().as_str(), known::POST);
        assert!(record.is_bluesky_lexicon());
        assert_eq!(record.created_at(), Some(when()));
    }

    #[test]
    fn post_roundtrip_with_embeds_and_reply() {
        let record = Record::Post(PostRecord {
            text: "check this out".into(),
            created_at: when(),
            langs: vec!["en".into(), "ja".into()],
            reply_parent: Some(post_uri()),
            embed: Some(Embed::Images(vec![
                ImageEmbed {
                    alt: Some("a cat".into()),
                    kind: MediaKind::Photo,
                },
                ImageEmbed {
                    alt: None,
                    kind: MediaKind::GifTenor,
                },
            ])),
            tags: vec!["aiart".into()],
        });
        let back = Record::from_cbor(&record.to_cbor()).unwrap();
        assert_eq!(back, record);
        if let Record::Post(p) = &back {
            assert!(p.has_media());
            assert!(p.has_media_missing_alt());
            assert_eq!(p.media_kinds(), vec![MediaKind::Photo, MediaKind::GifTenor]);
        } else {
            panic!("expected post");
        }
    }

    #[test]
    fn external_and_record_embeds_roundtrip() {
        for embed in [
            Embed::External {
                uri: "https://tenor.com/view/123".into(),
            },
            Embed::Record(post_uri()),
        ] {
            let record = Record::Post(PostRecord {
                text: "embed test".into(),
                created_at: when(),
                langs: vec!["en".into()],
                reply_parent: None,
                embed: Some(embed.clone()),
                tags: vec![],
            });
            let back = Record::from_cbor(&record.to_cbor()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn graph_records_roundtrip() {
        let bob = Did::plc_from_seed(b"bob");
        for record in [
            Record::Like(LikeRecord {
                subject: post_uri(),
                created_at: when(),
            }),
            Record::Repost(RepostRecord {
                subject: post_uri(),
                created_at: when(),
            }),
            Record::Follow(FollowRecord {
                subject: bob.clone(),
                created_at: when(),
            }),
            Record::Block(BlockRecord {
                subject: bob,
                created_at: when(),
            }),
        ] {
            let back = Record::from_cbor(&record.to_cbor()).unwrap();
            assert_eq!(back, record);
            assert!(record.is_bluesky_lexicon());
        }
    }

    #[test]
    fn profile_feedgen_labeler_roundtrip() {
        let records = [
            Record::Profile(ProfileRecord {
                display_name: "Alice".into(),
                description: "posting about art".into(),
                has_avatar: true,
                has_banner: false,
                created_at: when(),
            }),
            Record::FeedGenerator(FeedGeneratorRecord {
                service_did: Did::web("skyfeed.example").unwrap(),
                display_name: "cat-pics".into(),
                description: "all the cat pictures, nsfw excluded".into(),
                created_at: when(),
            }),
            Record::LabelerService(LabelerServiceRecord {
                policies: vec![
                    LabelValueDefinition {
                        value: "spoiler".into(),
                        severity: "inform".into(),
                        blurs: "content".into(),
                    },
                    LabelValueDefinition {
                        value: "no-alt-text".into(),
                        severity: "inform".into(),
                        blurs: "none".into(),
                    },
                ],
                created_at: when(),
            }),
        ];
        for record in records {
            let back = Record::from_cbor(&record.to_cbor()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn unknown_lexicon_roundtrip() {
        let record = Record::Unknown(UnknownRecord {
            record_type: Nsid::parse(known::WHTWND_ENTRY).unwrap(),
            value: Value::map([
                ("$type", Value::text(known::WHTWND_ENTRY)),
                ("title", Value::text("Long-form blogging on ATProto")),
                ("content", Value::text("# markdown body")),
                ("createdAt", Value::text(when().to_iso8601())),
            ]),
        });
        let back = Record::from_cbor(&record.to_cbor()).unwrap();
        assert_eq!(back.collection().as_str(), known::WHTWND_ENTRY);
        assert!(!back.is_bluesky_lexicon());
        assert_eq!(back.created_at(), Some(when()));
    }

    #[test]
    fn from_value_rejects_missing_fields() {
        assert!(Record::from_value(&Value::map([("text", Value::text("x"))])).is_err());
        assert!(Record::from_value(&Value::map([
            ("$type", Value::text(known::POST)),
            ("text", Value::text("x")),
        ]))
        .is_err()); // missing createdAt
        assert!(Record::from_value(&Value::map([
            ("$type", Value::text(known::FOLLOW)),
            ("subject", Value::text("not-a-did")),
            ("createdAt", Value::text("2024-04-24")),
        ]))
        .is_err());
    }

    #[test]
    fn media_kind_roundtrip() {
        for kind in MediaKind::all() {
            assert_eq!(MediaKind::parse(kind.as_str()).unwrap(), kind);
        }
        assert!(MediaKind::parse("hologram").is_err());
    }
}
