//! Namespaced identifiers (NSIDs) for lexicon types.
//!
//! Lexicons organise record types into DNS-like reverse-domain namespaces,
//! e.g. `app.bsky.feed.post` (§2). The measurement study distinguishes
//! Bluesky lexicons (`app.bsky.*`, `com.atproto.*`) from third-party
//! lexicons such as WhiteWind's `com.whtwnd.blog.entry` ("Non-Bluesky
//! content", §4).

use crate::error::{AtError, Result};
use std::fmt;

/// A validated NSID such as `app.bsky.feed.post`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nsid(String);

/// Well-known NSIDs used throughout the workspace.
pub mod known {
    /// A microblog post.
    pub const POST: &str = "app.bsky.feed.post";
    /// A like on a post or feed generator.
    pub const LIKE: &str = "app.bsky.feed.like";
    /// A repost.
    pub const REPOST: &str = "app.bsky.feed.repost";
    /// A follow edge.
    pub const FOLLOW: &str = "app.bsky.graph.follow";
    /// A block edge.
    pub const BLOCK: &str = "app.bsky.graph.block";
    /// An actor profile record.
    pub const PROFILE: &str = "app.bsky.actor.profile";
    /// A feed generator declaration record.
    pub const FEED_GENERATOR: &str = "app.bsky.feed.generator";
    /// A labeler service declaration record.
    pub const LABELER_SERVICE: &str = "app.bsky.labeler.service";
    /// A moderation label (emitted on label streams, not stored in repos).
    pub const LABEL: &str = "com.atproto.label.defs#label";
    /// WhiteWind long-form blog entry (third-party lexicon).
    pub const WHTWND_ENTRY: &str = "com.whtwnd.blog.entry";
}

impl Nsid {
    /// Parse and validate an NSID.
    pub fn parse(s: &str) -> Result<Nsid> {
        // Allow an optional `#fragment` (used for defs references).
        let (main, fragment) = match s.split_once('#') {
            Some((m, f)) => (m, Some(f)),
            None => (s, None),
        };
        let segments: Vec<&str> = main.split('.').collect();
        if segments.len() < 3 {
            return Err(AtError::InvalidNsid(s.to_string()));
        }
        for seg in &segments {
            if seg.is_empty()
                || seg.len() > 63
                || !seg.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-')
                || seg.starts_with('-')
                || seg.ends_with('-')
            {
                return Err(AtError::InvalidNsid(s.to_string()));
            }
        }
        // The name segment (last) must start with a letter.
        if !segments
            .last()
            .unwrap()
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic())
            .unwrap_or(false)
        {
            return Err(AtError::InvalidNsid(s.to_string()));
        }
        if let Some(f) = fragment {
            if f.is_empty() || !f.bytes().all(|b| b.is_ascii_alphanumeric()) {
                return Err(AtError::InvalidNsid(s.to_string()));
            }
        }
        Ok(Nsid(s.to_string()))
    }

    /// The NSID string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The namespace authority (all segments except the final name), e.g.
    /// `app.bsky.feed` for `app.bsky.feed.post`.
    pub fn authority(&self) -> &str {
        let main = self.0.split('#').next().unwrap_or(&self.0);
        match main.rfind('.') {
            Some(idx) => &main[..idx],
            None => main,
        }
    }

    /// The record type name (final segment, without fragment).
    pub fn name(&self) -> &str {
        let main = self.0.split('#').next().unwrap_or(&self.0);
        main.rsplit('.').next().unwrap_or(main)
    }

    /// Whether this NSID belongs to the Bluesky application or core ATProto
    /// lexicons (as opposed to third-party applications like WhiteWind).
    pub fn is_bluesky_lexicon(&self) -> bool {
        self.0.starts_with("app.bsky.") || self.0.starts_with("com.atproto.")
    }
}

impl fmt::Display for Nsid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Nsid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nsid({})", self.0)
    }
}

impl std::str::FromStr for Nsid {
    type Err = AtError;
    fn from_str(s: &str) -> Result<Nsid> {
        Nsid::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_nsids_are_valid() {
        for s in [
            known::POST,
            known::LIKE,
            known::REPOST,
            known::FOLLOW,
            known::BLOCK,
            known::PROFILE,
            known::FEED_GENERATOR,
            known::LABELER_SERVICE,
            known::LABEL,
            known::WHTWND_ENTRY,
        ] {
            assert!(Nsid::parse(s).is_ok(), "{s}");
        }
    }

    #[test]
    fn authority_and_name() {
        let n = Nsid::parse("app.bsky.feed.post").unwrap();
        assert_eq!(n.authority(), "app.bsky.feed");
        assert_eq!(n.name(), "post");
        assert!(n.is_bluesky_lexicon());
        let n = Nsid::parse("com.whtwnd.blog.entry").unwrap();
        assert!(!n.is_bluesky_lexicon());
        assert_eq!(n.name(), "entry");
    }

    #[test]
    fn fragment_handling() {
        let n = Nsid::parse("com.atproto.label.defs#label").unwrap();
        assert_eq!(n.name(), "defs");
        assert_eq!(n.authority(), "com.atproto.label");
        assert!(Nsid::parse("com.atproto.label.defs#").is_err());
        assert!(Nsid::parse("com.atproto.label.defs#two#three").is_err());
    }

    #[test]
    fn rejects_invalid() {
        for s in [
            "",
            "single",
            "two.segments",
            "has..empty",
            "app.bsky.1numeric",
            "app.bsky.-dash",
            "app.bsky.dash-",
            "app.bsky.sp ace",
            "app.bsky.под",
        ] {
            assert!(Nsid::parse(s).is_err(), "should reject {s:?}");
        }
    }
}
