//! Wire framing mitigations: padding and batching for firehose frames.
//!
//! The traffic-observatory study (§10) asks what a *passive* on-path
//! observer learns from `(size, inter-arrival gap)` sequences alone, and at
//! what bandwidth cost the classic countermeasures defeat it. This module is
//! the mitigation layer: it defines the knobs and the canonical accounting
//! used everywhere the workspace talks about framed wire bytes.
//!
//! * [`PaddingPolicy`] — pad each frame up to a size bucket (`None`,
//!   128-byte `Buckets`, or a 4096-byte `Constant` cell), the standard
//!   size-channel countermeasures from the encrypted-DNS literature
//!   ("Padding Ain't Enough", FOCI'20).
//! * [`BatchPolicy`] — coalesce all events for a connection that fall into
//!   the same fixed time window into one frame, flushed at the window edge;
//!   a timing-channel countermeasure that also amortises per-frame headers.
//! * [`FramingPolicy`] — the (padding, batching) pair; `Default` is the
//!   unmitigated wire (no padding, no batching).
//!
//! Two views of a frame exist and are deliberately distinct:
//!
//! 1. **Canonical accounting** ([`PaddingPolicy::frame_wire_size`]): the
//!    observer-independent size of a frame carrying events whose canonical
//!    sizes ([`crate::firehose::Event::wire_size`]) sum to `payload`. This is
//!    a pure function of the frame content, so a sharded run accounts the
//!    same bytes as a serial one. All study numbers use this view.
//! 2. **Physical encoding** ([`encode_frame`] / [`decode_frame`]): an actual
//!    byte layout (`[u32 count][u32 len ++ event bytes]* ++ zero padding`)
//!    proving the mitigations touch only the wire, never the content — the
//!    property tests decode padded/batched streams back to the original
//!    event sequence. Physical lengths use the events' real encodings
//!    (variable-width sequence numbers), so they can differ from the
//!    canonical accounting by a few bytes per frame; equivalence of
//!    *content*, not of the two length views, is the invariant.

use crate::error::{AtError, Result};
use crate::firehose::Event;

/// Bytes of frame-level header in the canonical accounting (length prefix,
/// frame type tag and count).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Bytes of per-event header inside a frame in the canonical accounting
/// (length prefix of the embedded event).
pub const EVENT_HEADER_BYTES: usize = 4;

/// Bucket width for [`PaddingPolicy::Buckets`].
pub const PAD_BUCKET_BYTES: usize = 128;

/// Cell size for [`PaddingPolicy::Constant`]; frames larger than one cell
/// occupy an integral number of cells.
pub const PAD_CONSTANT_BYTES: usize = 4096;

/// Size-channel mitigation: how a frame's length is padded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PaddingPolicy {
    /// No padding: the frame occupies exactly its content length.
    #[default]
    None,
    /// Pad up to the next multiple of [`PAD_BUCKET_BYTES`] (128 B), the
    /// block-padding recommendation of RFC 8467 applied to frames.
    Buckets,
    /// Pad up to [`PAD_CONSTANT_BYTES`] (4096 B); oversized frames occupy
    /// the next integral number of constant-size cells.
    Constant,
}

impl PaddingPolicy {
    /// Wire length of a frame whose content is `len` bytes.
    pub fn padded_len(&self, len: usize) -> usize {
        match self {
            PaddingPolicy::None => len,
            PaddingPolicy::Buckets => len.div_ceil(PAD_BUCKET_BYTES).max(1) * PAD_BUCKET_BYTES,
            PaddingPolicy::Constant => len.div_ceil(PAD_CONSTANT_BYTES).max(1) * PAD_CONSTANT_BYTES,
        }
    }

    /// Canonical wire size of one frame carrying `events` events whose
    /// canonical sizes ([`Event::wire_size`]) sum to `payload` bytes.
    ///
    /// Headers are part of the frame content (they get padded too), so even
    /// the unmitigated wire carries `FRAME_HEADER_BYTES + events *
    /// EVENT_HEADER_BYTES` bytes above the payload — which is exactly what
    /// batching reclaims.
    pub fn frame_wire_size(&self, events: usize, payload: usize) -> usize {
        self.padded_len(FRAME_HEADER_BYTES + events * EVENT_HEADER_BYTES + payload)
    }

    /// Parse a CLI spelling (`none` / `buckets` / `constant`).
    pub fn parse(s: &str) -> Option<PaddingPolicy> {
        match s {
            "none" => Some(PaddingPolicy::None),
            "buckets" => Some(PaddingPolicy::Buckets),
            "constant" => Some(PaddingPolicy::Constant),
            _ => Option::None,
        }
    }

    /// The CLI spelling of this policy.
    pub fn name(&self) -> &'static str {
        match self {
            PaddingPolicy::None => "none",
            PaddingPolicy::Buckets => "buckets",
            PaddingPolicy::Constant => "constant",
        }
    }
}

/// Timing-channel mitigation: coalesce events within a fixed window into
/// one frame per connection, flushed at the window edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BatchPolicy {
    /// Window width in seconds; `0` disables batching (one frame per event,
    /// sent at the event's own time).
    pub window_secs: u64,
}

impl BatchPolicy {
    /// A batching policy with the given window width (`0` = off).
    pub fn window(window_secs: u64) -> BatchPolicy {
        BatchPolicy { window_secs }
    }

    /// Whether batching is enabled.
    pub fn is_active(&self) -> bool {
        self.window_secs > 0
    }

    /// The window index a Unix timestamp falls into. Only meaningful when
    /// [`Self::is_active`].
    pub fn window_of(&self, timestamp: i64) -> i64 {
        timestamp.div_euclid(self.window_secs as i64)
    }

    /// The flush time (window edge) of window `window`: every event in the
    /// window leaves the host in one frame at this instant.
    pub fn flush_at(&self, window: i64) -> i64 {
        (window + 1) * self.window_secs as i64
    }
}

/// The full mitigation pair applied to a wire: padding × batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FramingPolicy {
    /// Size-channel mitigation.
    pub padding: PaddingPolicy,
    /// Timing-channel mitigation.
    pub batch: BatchPolicy,
}

impl FramingPolicy {
    /// The unmitigated wire (no padding, no batching).
    pub fn none() -> FramingPolicy {
        FramingPolicy::default()
    }

    /// Construct from the two knobs.
    pub fn new(padding: PaddingPolicy, batch_window_secs: u64) -> FramingPolicy {
        FramingPolicy {
            padding,
            batch: BatchPolicy::window(batch_window_secs),
        }
    }

    /// Whether this policy changes anything relative to the unmitigated
    /// wire's accounting. (Even [`FramingPolicy::none`] accounts frame and
    /// event headers; "active" means padding or batching is switched on.)
    pub fn is_mitigating(&self) -> bool {
        self.padding != PaddingPolicy::None || self.batch.is_active()
    }
}

/// Encode a batch of events into one physical frame: `[u32 count]` then
/// `[u32 len][event bytes]` per event, zero-padded to the policy's wire
/// length. Big-endian lengths.
pub fn encode_frame(events: &[Event], padding: PaddingPolicy) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(events.len() as u32).to_be_bytes());
    for event in events {
        let bytes = event.encode();
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&bytes);
    }
    // The physical header is 4 bytes (count); pad the remaining canonical
    // header width so the padded physical length tracks the accounting.
    out.resize(padding.padded_len(out.len()), 0);
    out
}

/// Decode a physical frame produced by [`encode_frame`] back into its event
/// sequence. Trailing padding (zero bytes beyond the last event) is ignored;
/// truncated or malformed frames are an error, never silently skipped.
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<Event>> {
    let take = |at: usize| -> Result<u32> {
        let slice = bytes
            .get(at..at + 4)
            .ok_or_else(|| AtError::CborDecode("frame truncated".into()))?;
        Ok(u32::from_be_bytes(slice.try_into().expect("4-byte slice")))
    };
    let count = take(0)? as usize;
    let mut at = 4usize;
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let len = take(at)? as usize;
        at += 4;
        let body = bytes
            .get(at..at + len)
            .ok_or_else(|| AtError::CborDecode("frame event truncated".into()))?;
        events.push(Event::decode(body)?);
        at += len;
    }
    if bytes[at..].iter().any(|&b| b != 0) {
        return Err(AtError::CborDecode(
            "frame trailer carries non-padding bytes".into(),
        ));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cid::Cid;
    use crate::datetime::Datetime;
    use crate::did::Did;
    use crate::firehose::EventBody;
    use crate::handle::Handle;
    use crate::repo::{RecordOp, WriteAction};
    use crate::testrand::TestRng;
    use crate::tid::Tid;

    fn event(rng: &mut TestRng, seq: u64) -> Event {
        let did = Did::plc_from_seed(&rng.next_u64().to_be_bytes());
        let time = Datetime::from_ymd(2024, 2, 15)
            .unwrap()
            .plus_seconds(rng.below(1_000_000) as i64);
        let body = match rng.below(4) {
            0 => EventBody::Commit {
                did,
                commit: Cid::for_cbor(&rng.next_u64().to_be_bytes()),
                rev: Tid::from_micros(rng.below(1 << 40), 1),
                ops: (0..rng.below(4))
                    .map(|i| RecordOp {
                        action: WriteAction::Create,
                        key: format!("app.bsky.feed.post/3k{}x{i}", rng.lowercase(4, 10)),
                        cid: Some(Cid::for_cbor(&rng.next_u64().to_be_bytes())),
                    })
                    .collect(),
                blocks_bytes: rng.below(4096) as usize,
                too_big: false,
            },
            1 => EventBody::Identity { did },
            2 => EventBody::HandleChange {
                did,
                handle: Handle::parse(&format!("{}.bsky.social", rng.lowercase(4, 12))).unwrap(),
            },
            _ => EventBody::Tombstone { did },
        };
        Event { seq, time, body }
    }

    #[test]
    fn padded_len_rounds_to_policy_boundaries() {
        assert_eq!(PaddingPolicy::None.padded_len(0), 0);
        assert_eq!(PaddingPolicy::None.padded_len(117), 117);
        assert_eq!(PaddingPolicy::Buckets.padded_len(0), 128);
        assert_eq!(PaddingPolicy::Buckets.padded_len(1), 128);
        assert_eq!(PaddingPolicy::Buckets.padded_len(128), 128);
        assert_eq!(PaddingPolicy::Buckets.padded_len(129), 256);
        assert_eq!(PaddingPolicy::Constant.padded_len(1), 4096);
        assert_eq!(PaddingPolicy::Constant.padded_len(4096), 4096);
        assert_eq!(PaddingPolicy::Constant.padded_len(4097), 8192);
    }

    #[test]
    fn frame_wire_size_always_exceeds_payload() {
        for events in 1..5usize {
            for payload in [0usize, 1, 100, 5000] {
                for padding in [
                    PaddingPolicy::None,
                    PaddingPolicy::Buckets,
                    PaddingPolicy::Constant,
                ] {
                    let wire = padding.frame_wire_size(events, payload);
                    assert!(
                        wire > payload,
                        "{padding:?} events={events} payload={payload}: wire {wire}"
                    );
                    assert!(wire >= FRAME_HEADER_BYTES + events * EVENT_HEADER_BYTES + payload);
                }
            }
        }
    }

    #[test]
    fn padding_policy_cli_names_roundtrip() {
        for policy in [
            PaddingPolicy::None,
            PaddingPolicy::Buckets,
            PaddingPolicy::Constant,
        ] {
            assert_eq!(PaddingPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(PaddingPolicy::parse("bogus"), Option::None);
    }

    #[test]
    fn batch_windows_partition_the_clock() {
        let batch = BatchPolicy::window(60);
        assert!(batch.is_active());
        assert_eq!(batch.window_of(0), 0);
        assert_eq!(batch.window_of(59), 0);
        assert_eq!(batch.window_of(60), 1);
        assert_eq!(batch.flush_at(0), 60);
        assert_eq!(batch.flush_at(1), 120);
        assert!(!BatchPolicy::window(0).is_active());
    }

    #[test]
    fn framed_streams_decode_to_the_same_event_sequence() {
        // The property the mitigations must preserve: for any event
        // sequence and any (padding, batch-size) cell, chunking the
        // sequence into frames, padding them and decoding them back yields
        // exactly the original events. Mitigations touch the wire, never
        // the content.
        let mut rng = TestRng::new(0x0b5e_70f1);
        for _ in 0..25 {
            let events: Vec<Event> = (0..1 + rng.below(20))
                .map(|seq| event(&mut rng, seq))
                .collect();
            for padding in [
                PaddingPolicy::None,
                PaddingPolicy::Buckets,
                PaddingPolicy::Constant,
            ] {
                let batch = 1 + rng.below(7) as usize;
                let mut decoded = Vec::new();
                for chunk in events.chunks(batch) {
                    let frame = encode_frame(chunk, padding);
                    assert_eq!(frame.len(), padding.padded_len(frame.len()));
                    decoded.extend(decode_frame(&frame).unwrap());
                }
                assert_eq!(decoded, events, "{padding:?} batch={batch}");
            }
        }
    }

    #[test]
    fn decode_rejects_corrupted_frames() {
        let mut rng = TestRng::new(7);
        let events = vec![event(&mut rng, 1), event(&mut rng, 2)];
        let frame = encode_frame(&events, PaddingPolicy::Buckets);
        // Truncation inside an event.
        assert!(decode_frame(&frame[..10]).is_err());
        // A flipped byte in the padding region is not padding any more.
        let mut tampered = frame.clone();
        *tampered.last_mut().unwrap() = 0xff;
        assert!(decode_frame(&tampered).is_err());
        // Count pointing past the end.
        let mut overcount = frame.clone();
        overcount[3] = 0xff;
        assert!(decode_frame(&overcount).is_err());
    }
}
