//! Merkle Search Tree (MST).
//!
//! ATProto repositories store their record index in an MST: a deterministic,
//! content-addressed search tree whose shape depends only on the set of keys
//! it contains (never on insertion order). Keys are `<collection>/<rkey>`
//! strings and values are CIDs of the record blocks.
//!
//! This implementation keeps the authoritative key→value mapping in an
//! ordered map and materialises the tree — node layers derived from leading
//! zero bits of `sha256(key)`, exactly like the reference implementation —
//! whenever the root CID or the node block set is requested. Because the tree
//! is a pure function of the mapping, the crucial MST property (identical
//! contents ⇒ identical root CID) holds by construction, and the rebuild cost
//! is linear in the number of keys, which is ample for simulation scale.
//! Two memos keep the commit hot path off the hash function: each key's
//! layer is computed once at insertion (not per build), and the last
//! materialisation is cached until the next mutation, so back-to-back reads
//! (commit, then CAR export) rebuild nothing. Node blocks are encoded
//! directly to bytes with [`crate::cbor`]'s raw writers — byte-identical to
//! the generic `Value` encoder, without allocating a value tree per node.
//!
//! Node entries are **prefix-compressed on the wire**, as in the reference
//! implementation: within a node, each entry carries `p` (the number of key
//! bytes shared with the previous entry's key) and `k` (the remaining
//! suffix). Sibling record keys share long `<collection>/<rkey>` prefixes,
//! so this shrinks every node block — and with them full CAR exports and the
//! structural section of `getRepo(since)` deltas. [`decode_node`] undoes the
//! compression; [`Mst::structural_size_uncompressed`] measures the legacy
//! full-key encoding so the streaming bench can assert the byte win.

use crate::cbor::Value;
use crate::cid::Cid;
use crate::crypto::sha256;
use crate::error::{AtError, Result};
use std::collections::BTreeMap;

/// The fanout parameter: a key's layer is the number of leading zero *pairs of
/// bits* in its SHA-256 hash (fanout 4, as in the reference implementation).
const BITS_PER_LAYER: u32 = 2;

/// Compute the MST layer of a key.
pub fn key_layer(key: &str) -> u32 {
    let digest = sha256(key.as_bytes());
    let mut zeros = 0u32;
    for byte in digest {
        if byte == 0 {
            zeros += 8;
            continue;
        }
        zeros += byte.leading_zeros();
        break;
    }
    zeros / BITS_PER_LAYER
}

/// Validate an MST key (`<collection>/<rkey>`).
pub fn validate_key(key: &str) -> Result<()> {
    let (collection, rkey) = key
        .split_once('/')
        .ok_or_else(|| AtError::RepoError(format!("MST key missing '/': {key}")))?;
    if collection.is_empty() || rkey.is_empty() || key.len() > 256 {
        return Err(AtError::RepoError(format!("invalid MST key: {key}")));
    }
    if !key
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'_' || b == b'/')
    {
        return Err(AtError::RepoError(format!("invalid MST key bytes: {key}")));
    }
    Ok(())
}

/// One key's stored state: its record CID plus the key's MST layer. The
/// layer is a pure function of the key (`sha256` leading zeros), so it is
/// computed once at insertion instead of on every materialisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryState {
    cid: Cid,
    layer: u32,
}

/// A content-addressed key→CID index.
///
/// The authoritative state is the ordered `entries` map; the tree shape is
/// a pure function of it. The last materialisation (root CID plus every
/// node block) is memoised in `built` and invalidated by any mutation, so
/// repeated reads — a CAR export right after a commit, a root probe — cost
/// a copy instead of a rebuild.
#[derive(Debug, Default)]
pub struct Mst {
    entries: BTreeMap<String, EntryState>,
    built: std::cell::RefCell<Option<(Cid, Vec<MstNode>)>>,
}

impl Clone for Mst {
    fn clone(&self) -> Mst {
        Mst {
            entries: self.entries.clone(),
            built: std::cell::RefCell::new(self.built.borrow().clone()),
        }
    }
}

impl PartialEq for Mst {
    fn eq(&self, other: &Mst) -> bool {
        // The memo is derived state; two trees are equal iff their
        // contents are.
        self.entries == other.entries
    }
}

impl Eq for Mst {}

/// A single change between two MST states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstDiffOp {
    /// Key present in the new tree but not the old one.
    Created {
        /// The key.
        key: String,
        /// The new value.
        cid: Cid,
    },
    /// Key present in both but with a different value.
    Updated {
        /// The key.
        key: String,
        /// The previous value.
        old: Cid,
        /// The new value.
        new: Cid,
    },
    /// Key removed in the new tree.
    Deleted {
        /// The key.
        key: String,
        /// The value it previously had.
        cid: Cid,
    },
}

impl MstDiffOp {
    /// The key this operation concerns.
    pub fn key(&self) -> &str {
        match self {
            MstDiffOp::Created { key, .. }
            | MstDiffOp::Updated { key, .. }
            | MstDiffOp::Deleted { key, .. } => key,
        }
    }
}

/// A materialised tree node (only produced by [`Mst::blocks`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MstNode {
    /// CID of this node's encoded block.
    pub cid: Cid,
    /// The encoded DAG-CBOR bytes of the node.
    pub bytes: Vec<u8>,
}

impl Mst {
    /// Create an empty tree.
    pub fn new() -> Mst {
        Mst::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace a key, returning the previous value if any.
    pub fn insert(&mut self, key: &str, cid: Cid) -> Result<Option<Cid>> {
        validate_key(key)?;
        if let Some(state) = self.entries.get_mut(key) {
            if state.cid == cid {
                return Ok(Some(cid)); // no-op replace: the memo stays valid
            }
            let old = std::mem::replace(&mut state.cid, cid);
            *self.built.get_mut() = None;
            return Ok(Some(old));
        }
        let layer = key_layer(key);
        self.entries
            .insert(key.to_string(), EntryState { cid, layer });
        *self.built.get_mut() = None;
        Ok(None)
    }

    /// Remove a key, returning its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<Cid> {
        let removed = self.entries.remove(key)?;
        *self.built.get_mut() = None;
        Some(removed.cid)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Cid> {
        self.entries.get(key).map(|state| &state.cid)
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Iterate all `(key, cid)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Cid)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), &v.cid))
    }

    /// Iterate the keys of a single collection (keys beginning with
    /// `<collection>/`).
    pub fn iter_collection<'a>(
        &'a self,
        collection: &str,
    ) -> impl Iterator<Item = (&'a str, &'a Cid)> + 'a {
        let prefix = format!("{collection}/");
        let end = format!("{collection}0"); // '0' sorts just after '/'
        self.entries
            .range(prefix..end)
            .map(|(k, v)| (k.as_str(), &v.cid))
    }

    /// Compute the differences needed to go from `old` to `self`.
    pub fn diff(&self, old: &Mst) -> Vec<MstDiffOp> {
        let mut ops = Vec::new();
        for (key, state) in &self.entries {
            match old.entries.get(key) {
                None => ops.push(MstDiffOp::Created {
                    key: key.clone(),
                    cid: state.cid,
                }),
                Some(prev) if prev.cid != state.cid => ops.push(MstDiffOp::Updated {
                    key: key.clone(),
                    old: prev.cid,
                    new: state.cid,
                }),
                Some(_) => {}
            }
        }
        for (key, state) in &old.entries {
            if !self.entries.contains_key(key) {
                ops.push(MstDiffOp::Deleted {
                    key: key.clone(),
                    cid: state.cid,
                });
            }
        }
        ops.sort_by(|a, b| a.key().cmp(b.key()));
        ops
    }

    /// The root CID of the materialised tree.
    pub fn root_cid(&self) -> Cid {
        self.build().0
    }

    /// All node blocks of the materialised tree (for CAR export and sync).
    pub fn blocks(&self) -> Vec<MstNode> {
        self.build().1
    }

    /// The root CID and every node block in one materialisation (callers
    /// needing both avoid building the tree twice).
    pub fn root_and_blocks(&self) -> (Cid, Vec<MstNode>) {
        self.build()
    }

    /// The MST diff walk at the node level: the tree node blocks of `self`
    /// that are **not** nodes of `old`. Because nodes are content-addressed,
    /// these are exactly the structural blocks a sync consumer is missing
    /// after it has already fetched `old` — the node portion of a
    /// `com.atproto.sync.getRepo(did, since)` delta. The empty diff (equal
    /// trees) yields an empty vector.
    ///
    /// This is the *reference* form of the walk (it materialises both
    /// trees, O(n)); the repository layer serves deltas from its O(churn)
    /// per-commit node log instead, and a test in `repo.rs` pins the two
    /// equal.
    pub fn node_delta(&self, old: &Mst) -> Vec<MstNode> {
        let old_cids: std::collections::BTreeSet<Cid> =
            old.blocks().iter().map(|n| n.cid).collect();
        self.blocks()
            .into_iter()
            .filter(|n| !old_cids.contains(&n.cid))
            .collect()
    }

    /// Total serialized size of all node blocks in bytes (prefix-compressed
    /// wire encoding).
    pub fn structural_size(&self) -> usize {
        self.blocks().iter().map(|n| n.bytes.len()).sum()
    }

    /// What the node blocks would occupy under the legacy full-key encoding
    /// (every entry carries its whole key, no `p` field). Kept purely as the
    /// measurement baseline for the prefix-compression win; nothing encodes
    /// this form on the wire anymore.
    pub fn structural_size_uncompressed(&self) -> usize {
        self.build_with(false).1.iter().map(|n| n.bytes.len()).sum()
    }

    /// Build the tree: returns the root CID and every node block, serving
    /// repeats from the memo until the next mutation.
    fn build(&self) -> (Cid, Vec<MstNode>) {
        if let Some(cached) = self.built.borrow().as_ref() {
            return cached.clone();
        }
        let out = self.build_with(true);
        *self.built.borrow_mut() = Some(out.clone());
        out
    }

    fn build_with(&self, compress: bool) -> (Cid, Vec<MstNode>) {
        let mut blocks = Vec::new();
        let items: Vec<(&str, Cid, u32)> = self
            .entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.cid, v.layer))
            .collect();
        let top_layer = items.iter().map(|(_, _, l)| *l).max().unwrap_or(0);
        let root = Self::build_node(&items, top_layer, &mut blocks, compress);
        (root, blocks)
    }

    /// Recursively build the node covering `items` at `layer`.
    fn build_node(
        items: &[(&str, Cid, u32)],
        layer: u32,
        blocks: &mut Vec<MstNode>,
        compress: bool,
    ) -> Cid {
        // Entries at this layer, in order; the gaps between them (and at both
        // ends) become child subtrees at layer - 1.
        let mut node_entries: Vec<PendingEntry<'_>> = Vec::new();
        let mut segment_start = 0usize;
        let mut left_child: Option<Cid> = None;
        let mut first_entry_seen = false;
        // Prefix compression state: the previous entry's full key within
        // *this* node (compression never crosses node boundaries).
        let mut prev_key: Option<&str> = None;

        let flush_segment = |start: usize, end: usize, blocks: &mut Vec<MstNode>| -> Option<Cid> {
            if start >= end {
                return None;
            }
            if layer == 0 {
                // Cannot descend further; at layer 0 every item must be an
                // entry, which the layer computation guarantees.
                return None;
            }
            Some(Self::build_node(
                &items[start..end],
                layer - 1,
                blocks,
                compress,
            ))
        };

        for (idx, &(key, cid, item_layer)) in items.iter().enumerate() {
            if item_layer >= layer {
                // Subtree of everything since the previous entry.
                let subtree = flush_segment(segment_start, idx, blocks);
                if !first_entry_seen {
                    left_child = subtree;
                } else if let Some(sub) = subtree {
                    // Attach as the "tree" of the previous entry.
                    if let Some(prev) = node_entries.last_mut() {
                        prev.subtree = Some(sub);
                    }
                }
                first_entry_seen = true;
                let shared = if compress {
                    prev_key
                        .map(|prev| common_prefix_len(prev, key))
                        .unwrap_or(0)
                } else {
                    0
                };
                node_entries.push(PendingEntry {
                    prefix: shared,
                    key,
                    value: cid,
                    subtree: None,
                });
                prev_key = Some(key);
                segment_start = idx + 1;
            }
        }
        // Trailing subtree.
        let trailing = flush_segment(segment_start, items.len(), blocks);
        if !first_entry_seen {
            left_child = trailing;
        } else if let Some(sub) = trailing {
            if let Some(prev) = node_entries.last_mut() {
                prev.subtree = Some(sub);
            }
        }

        let bytes = encode_node(left_child, &node_entries, layer, compress);
        let cid = Cid::for_cbor(&bytes);
        blocks.push(MstNode { cid, bytes });
        cid
    }
}

/// A node entry awaiting encoding: the full key plus the prefix length
/// shared with the previous entry (0 and unused when uncompressed).
struct PendingEntry<'a> {
    prefix: usize,
    key: &'a str,
    value: Cid,
    subtree: Option<Cid>,
}

/// Encode one MST node block directly, without building an intermediate
/// [`Value`] tree — byte-identical to encoding the equivalent `Value`
/// (map keys emitted in DAG-CBOR canonical order: length first, then
/// bytewise), pinned by the `direct_encoding_matches_value_encoding` test.
fn encode_node(
    left_child: Option<Cid>,
    entries: &[PendingEntry<'_>],
    layer: u32,
    compress: bool,
) -> Vec<u8> {
    use crate::cbor::raw;
    let mut out = Vec::with_capacity(64 + entries.len() * 64);
    raw::map_head(3, &mut out);
    // "e" < "l" < "layer" in canonical order.
    raw::text("e", &mut out);
    raw::array_head(entries.len() as u64, &mut out);
    for entry in entries {
        // Entry keys are all one byte, so canonical order is bytewise:
        // "k" < "p" < "t" < "v" (no "p" when uncompressed).
        let fields = 2 + usize::from(compress) + usize::from(entry.subtree.is_some());
        raw::map_head(fields as u64, &mut out);
        raw::text("k", &mut out);
        raw::text(&entry.key[entry.prefix..], &mut out);
        if compress {
            raw::text("p", &mut out);
            raw::uint(entry.prefix as u64, &mut out);
        }
        if let Some(subtree) = entry.subtree {
            raw::text("t", &mut out);
            raw::link(&subtree, &mut out);
        }
        raw::text("v", &mut out);
        raw::link(&entry.value, &mut out);
    }
    raw::text("l", &mut out);
    match left_child {
        Some(cid) => raw::link(&cid, &mut out),
        None => raw::null(&mut out),
    }
    raw::text("layer", &mut out);
    raw::uint(layer as u64, &mut out);
    out
}

/// Number of leading bytes two keys share. Keys are ASCII (enforced by
/// [`validate_key`]), so a byte index is always a char boundary.
fn common_prefix_len(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

/// One entry of a decoded node, with the full key reconstructed from the
/// prefix compression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstNodeEntry {
    /// The full record key.
    pub key: String,
    /// The record block CID.
    pub value: Cid,
    /// Link to the subtree between this entry and the next, if any.
    pub tree: Option<Cid>,
}

/// A decoded MST node block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedMstNode {
    /// Link to the subtree left of the first entry.
    pub left: Option<Cid>,
    /// The node's layer.
    pub layer: u32,
    /// Entries in key order.
    pub entries: Vec<MstNodeEntry>,
}

/// Decode a node block, undoing the per-entry key prefix compression. An
/// entry without a `p` field decodes as an uncompressed (full-key) entry,
/// so both wire forms parse.
pub fn decode_node(bytes: &[u8]) -> Result<DecodedMstNode> {
    let value = crate::cbor::decode(bytes)?;
    let raw_entries = value
        .get("e")
        .and_then(Value::as_array)
        .ok_or_else(|| AtError::RepoError("MST node missing entry array".into()))?;
    let left = value.get("l").and_then(Value::as_link).copied();
    let layer = value.get("layer").and_then(Value::as_int).unwrap_or(0) as u32;
    let mut entries = Vec::with_capacity(raw_entries.len());
    let mut prev = String::new();
    for entry in raw_entries {
        let prefix = entry.get("p").and_then(Value::as_int).unwrap_or(0) as usize;
        let suffix = entry
            .get("k")
            .and_then(Value::as_text)
            .ok_or_else(|| AtError::RepoError("MST entry missing key".into()))?;
        if prefix > prev.len() {
            return Err(AtError::RepoError(format!(
                "MST entry prefix {prefix} exceeds previous key length {}",
                prev.len()
            )));
        }
        let key = format!("{}{}", &prev[..prefix], suffix);
        let value_cid = *entry
            .get("v")
            .and_then(Value::as_link)
            .ok_or_else(|| AtError::RepoError("MST entry missing value".into()))?;
        let tree = entry.get("t").and_then(Value::as_link).copied();
        prev.clone_from(&key);
        entries.push(MstNodeEntry {
            key,
            value: value_cid,
            tree,
        });
    }
    Ok(DecodedMstNode {
        left,
        layer,
        entries,
    })
}

impl FromIterator<(String, Cid)> for Mst {
    fn from_iter<T: IntoIterator<Item = (String, Cid)>>(iter: T) -> Self {
        Mst {
            entries: iter
                .into_iter()
                .map(|(key, cid)| {
                    let layer = key_layer(&key);
                    (key, EntryState { cid, layer })
                })
                .collect(),
            built: std::cell::RefCell::new(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid_for(n: u32) -> Cid {
        Cid::for_cbor(&n.to_be_bytes())
    }

    /// The direct node encoder must emit exactly what encoding the
    /// equivalent `Value` tree emits — the wire bytes (and so every node
    /// CID and repo commit) must not shift with the encoding fast path.
    #[test]
    fn direct_encoding_matches_value_encoding() {
        let mut mst = Mst::new();
        for n in 0..300u32 {
            mst.insert(&key_for(n), cid_for(n)).unwrap();
        }
        for compress in [true, false] {
            for node in mst.build_with(compress).1 {
                let decoded = decode_node(&node.bytes).unwrap();
                let mut prev: Option<String> = None;
                let entries: Vec<Value> = decoded
                    .entries
                    .iter()
                    .map(|entry| {
                        let shared = if compress {
                            prev.as_deref()
                                .map(|p| common_prefix_len(p, &entry.key))
                                .unwrap_or(0)
                        } else {
                            0
                        };
                        let mut pairs = vec![
                            ("k".to_string(), Value::text(&entry.key[shared..])),
                            ("v".to_string(), Value::Link(entry.value)),
                        ];
                        if compress {
                            pairs.push(("p".to_string(), Value::Int(shared as i64)));
                        }
                        if let Some(tree) = entry.tree {
                            pairs.push(("t".to_string(), Value::Link(tree)));
                        }
                        prev = Some(entry.key.clone());
                        Value::map(pairs)
                    })
                    .collect();
                let value = Value::map([
                    (
                        "l",
                        match decoded.left {
                            Some(cid) => Value::Link(cid),
                            None => Value::Null,
                        },
                    ),
                    ("e", Value::Array(entries)),
                    ("layer", Value::Int(decoded.layer as i64)),
                ]);
                assert_eq!(
                    crate::cbor::encode(&value),
                    node.bytes,
                    "direct encoding diverged (compress: {compress})"
                );
            }
        }
    }

    /// Mutations invalidate the materialisation memo; reads after a
    /// mutation see the new tree, and a no-op replace keeps the memo.
    #[test]
    fn build_memo_tracks_mutations() {
        let mut mst = Mst::new();
        mst.insert(&key_for(1), cid_for(1)).unwrap();
        let root1 = mst.root_cid();
        assert_eq!(mst.root_cid(), root1, "memoised read is stable");
        mst.insert(&key_for(1), cid_for(1)).unwrap(); // no-op replace
        assert_eq!(mst.root_cid(), root1);
        mst.insert(&key_for(2), cid_for(2)).unwrap();
        let root2 = mst.root_cid();
        assert_ne!(root2, root1, "insert invalidates the memo");
        mst.remove(&key_for(2)).unwrap();
        assert_eq!(mst.root_cid(), root1, "remove invalidates the memo");
    }

    fn key_for(n: u32) -> String {
        format!("app.bsky.feed.post/rkey{n:06}")
    }

    #[test]
    fn insert_get_remove() {
        let mut mst = Mst::new();
        assert!(mst.is_empty());
        assert_eq!(mst.insert(&key_for(1), cid_for(1)).unwrap(), None);
        assert_eq!(
            mst.insert(&key_for(1), cid_for(2)).unwrap(),
            Some(cid_for(1))
        );
        assert_eq!(mst.get(&key_for(1)), Some(&cid_for(2)));
        assert!(mst.contains(&key_for(1)));
        assert_eq!(mst.len(), 1);
        assert_eq!(mst.remove(&key_for(1)), Some(cid_for(2)));
        assert!(mst.is_empty());
    }

    #[test]
    fn key_validation() {
        assert!(validate_key("app.bsky.feed.post/3kdgeujwlq32y").is_ok());
        assert!(validate_key("nokey").is_err());
        assert!(validate_key("/empty-collection").is_err());
        assert!(validate_key("collection/").is_err());
        assert!(validate_key("has space/abc").is_err());
        let mut mst = Mst::new();
        assert!(mst.insert("bad key", cid_for(0)).is_err());
    }

    #[test]
    fn root_is_independent_of_insertion_order() {
        let n = 500;
        let mut a = Mst::new();
        for i in 0..n {
            a.insert(&key_for(i), cid_for(i)).unwrap();
        }
        let mut b = Mst::new();
        for i in (0..n).rev() {
            b.insert(&key_for(i), cid_for(i)).unwrap();
        }
        // Insert and remove extra keys in b; final contents are identical.
        b.insert(&key_for(10_000), cid_for(1)).unwrap();
        b.remove(&key_for(10_000));
        assert_eq!(a.root_cid(), b.root_cid());
        assert_eq!(a, b);
    }

    #[test]
    fn root_changes_with_content() {
        let mut a = Mst::new();
        a.insert(&key_for(1), cid_for(1)).unwrap();
        let root1 = a.root_cid();
        a.insert(&key_for(2), cid_for(2)).unwrap();
        let root2 = a.root_cid();
        assert_ne!(root1, root2);
        // Changing a value (not a key) also changes the root.
        a.insert(&key_for(2), cid_for(3)).unwrap();
        assert_ne!(a.root_cid(), root2);
        // Empty tree has a root too (the empty node).
        assert_ne!(Mst::new().root_cid(), root1);
    }

    #[test]
    fn blocks_contain_all_values_reachable() {
        let mut mst = Mst::new();
        for i in 0..200 {
            mst.insert(&key_for(i), cid_for(i)).unwrap();
        }
        let blocks = mst.blocks();
        assert!(!blocks.is_empty());
        // Decode every node and collect every referenced value CID.
        let mut value_cids = Vec::new();
        for node in &blocks {
            let value = crate::cbor::decode(&node.bytes).unwrap();
            assert_eq!(Cid::for_cbor(&node.bytes), node.cid);
            for entry in value.get("e").unwrap().as_array().unwrap() {
                value_cids.push(*entry.get("v").unwrap().as_link().unwrap());
            }
        }
        value_cids.sort();
        let mut expected: Vec<Cid> = (0..200).map(cid_for).collect();
        expected.sort();
        assert_eq!(value_cids, expected);
        assert!(mst.structural_size() > 0);
    }

    #[test]
    fn layers_spread_keys() {
        // Most keys land on layer 0; a minority on deeper layers, so the tree
        // actually has internal structure for a few hundred keys.
        let layers: Vec<u32> = (0..2000).map(|i| key_layer(&key_for(i))).collect();
        let zero = layers.iter().filter(|&&l| l == 0).count();
        let nonzero = layers.len() - zero;
        assert!(zero > nonzero, "layer 0 should dominate");
        assert!(nonzero > 0, "some keys should promote to higher layers");
    }

    #[test]
    fn collection_iteration_respects_boundaries() {
        let mut mst = Mst::new();
        mst.insert("app.bsky.feed.post/aaa", cid_for(1)).unwrap();
        mst.insert("app.bsky.feed.post/bbb", cid_for(2)).unwrap();
        mst.insert("app.bsky.feed.like/aaa", cid_for(3)).unwrap();
        mst.insert("app.bsky.graph.follow/aaa", cid_for(4)).unwrap();
        let posts: Vec<&str> = mst
            .iter_collection("app.bsky.feed.post")
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            posts,
            vec!["app.bsky.feed.post/aaa", "app.bsky.feed.post/bbb"]
        );
        let likes: Vec<&str> = mst
            .iter_collection("app.bsky.feed.like")
            .map(|(k, _)| k)
            .collect();
        assert_eq!(likes, vec!["app.bsky.feed.like/aaa"]);
        assert_eq!(mst.iter_collection("app.bsky.feed").count(), 0);
    }

    #[test]
    fn node_delta_of_identical_trees_is_empty() {
        let mut mst = Mst::new();
        for i in 0..100 {
            mst.insert(&key_for(i), cid_for(i)).unwrap();
        }
        assert!(mst.node_delta(&mst.clone()).is_empty());
        // The empty tree diffed against itself is also empty.
        assert!(Mst::new().node_delta(&Mst::new()).is_empty());
    }

    #[test]
    fn node_delta_for_single_record_add() {
        let mut old = Mst::new();
        for i in 0..200 {
            old.insert(&key_for(i), cid_for(i)).unwrap();
        }
        let mut new = old.clone();
        new.insert(&key_for(1_000), cid_for(1_000)).unwrap();
        let delta = new.node_delta(&old);
        // The add rewrites the path from the leaf to the root — a handful of
        // nodes, far fewer than the whole tree.
        assert!(!delta.is_empty());
        assert!(delta.len() < new.blocks().len());
        // Every delta node is a node of the new tree, and together with the
        // old nodes they cover the new tree completely.
        let new_cids: BTreeMap<Cid, ()> = new.blocks().iter().map(|n| (n.cid, ())).collect();
        assert!(delta.iter().all(|n| new_cids.contains_key(&n.cid)));
        let mut covered: std::collections::BTreeSet<Cid> =
            old.blocks().iter().map(|n| n.cid).collect();
        covered.extend(delta.iter().map(|n| n.cid));
        assert!(new.blocks().iter().all(|n| covered.contains(&n.cid)));
    }

    #[test]
    fn node_delta_after_delete_and_readd_under_same_key() {
        let mut old = Mst::new();
        for i in 0..50 {
            old.insert(&key_for(i), cid_for(i)).unwrap();
        }
        // Delete + re-add with the *same* value: the tree is content-
        // addressed, so the final state is identical and the delta is empty.
        let mut same = old.clone();
        same.remove(&key_for(7));
        same.insert(&key_for(7), cid_for(7)).unwrap();
        assert_eq!(same.root_cid(), old.root_cid());
        assert!(same.node_delta(&old).is_empty());
        // Delete + re-add with a *different* value rewrites the leaf path.
        let mut changed = old.clone();
        changed.remove(&key_for(7));
        changed.insert(&key_for(7), cid_for(700)).unwrap();
        assert_ne!(changed.root_cid(), old.root_cid());
        assert!(!changed.node_delta(&old).is_empty());
    }

    #[test]
    fn node_decode_reconstructs_prefix_compressed_keys() {
        let mut mst = Mst::new();
        for i in 0..300 {
            mst.insert(&key_for(i), cid_for(i)).unwrap();
        }
        mst.insert("app.bsky.feed.like/aaa111", cid_for(9_001))
            .unwrap();
        mst.insert("app.bsky.graph.follow/zz9", cid_for(9_002))
            .unwrap();
        // Decode every node and collect all (key, value) pairs: the tree's
        // full mapping must come back exactly, despite the compression.
        let mut decoded: BTreeMap<String, Cid> = BTreeMap::new();
        for node in mst.blocks() {
            let parsed = decode_node(&node.bytes).unwrap();
            for entry in parsed.entries {
                assert!(validate_key(&entry.key).is_ok(), "bad key {}", entry.key);
                decoded.insert(entry.key, entry.value);
            }
        }
        let expected: BTreeMap<String, Cid> =
            mst.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn prefix_compression_shrinks_node_blocks() {
        let mut mst = Mst::new();
        for i in 0..500 {
            mst.insert(&key_for(i), cid_for(i)).unwrap();
        }
        let compressed = mst.structural_size();
        let uncompressed = mst.structural_size_uncompressed();
        assert!(
            compressed < uncompressed,
            "prefix compression must shrink nodes: {compressed} vs {uncompressed}"
        );
        // Sibling keys share `app.bsky.feed.post/rkey…`, so the win is
        // substantial, not marginal.
        assert!(
            (compressed as f64) < 0.9 * uncompressed as f64,
            "expected a >10% structural win, got {compressed} vs {uncompressed}"
        );
        // Both encodings represent the same mapping.
        assert_eq!(mst.blocks().len(), mst.build_with(false).1.len());
    }

    #[test]
    fn decode_node_rejects_malformed_blocks() {
        assert!(decode_node(b"junk").is_err());
        // A map without the entry array.
        let no_entries = crate::cbor::encode(&Value::map([("l", Value::Null)]));
        assert!(decode_node(&no_entries).is_err());
        // A prefix longer than the previous key is corrupt.
        let bad_prefix = crate::cbor::encode(&Value::map([
            ("l", Value::Null),
            (
                "e",
                Value::Array(vec![Value::map([
                    ("p", Value::Int(5)),
                    ("k", Value::text("x/y")),
                    ("v", Value::Link(cid_for(1))),
                ])]),
            ),
            ("layer", Value::Int(0)),
        ]));
        assert!(decode_node(&bad_prefix).is_err());
        assert_eq!(common_prefix_len("abc/def", "abc/xyz"), 4);
        assert_eq!(common_prefix_len("", "abc"), 0);
    }

    #[test]
    fn diff_reports_all_changes() {
        let mut old = Mst::new();
        old.insert(&key_for(1), cid_for(1)).unwrap();
        old.insert(&key_for(2), cid_for(2)).unwrap();
        old.insert(&key_for(3), cid_for(3)).unwrap();
        let mut new = old.clone();
        new.remove(&key_for(1));
        new.insert(&key_for(2), cid_for(20)).unwrap();
        new.insert(&key_for(4), cid_for(4)).unwrap();
        let ops = new.diff(&old);
        assert_eq!(ops.len(), 3);
        assert!(ops.contains(&MstDiffOp::Deleted {
            key: key_for(1),
            cid: cid_for(1)
        }));
        assert!(ops.contains(&MstDiffOp::Updated {
            key: key_for(2),
            old: cid_for(2),
            new: cid_for(20)
        }));
        assert!(ops.contains(&MstDiffOp::Created {
            key: key_for(4),
            cid: cid_for(4)
        }));
        assert!(new.diff(&new).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;
    use std::collections::BTreeMap;

    fn arb_entries(rng: &mut TestRng) -> BTreeMap<String, u32> {
        let count = rng.below(64) as usize;
        (0..count)
            .map(|_| {
                let key = format!("app.bsky.feed.post/{}", rng.lowercase(1, 8));
                (key, rng.next_u64() as u32)
            })
            .collect()
    }

    #[test]
    fn root_depends_only_on_contents() {
        let mut rng = TestRng::new(0x357);
        for _ in 0..40 {
            let entries = arb_entries(&mut rng);
            let order_seed = rng.next_u64();
            let mut forward = Mst::new();
            for (k, v) in &entries {
                forward.insert(k, Cid::for_cbor(&v.to_be_bytes())).unwrap();
            }
            // Insert in a pseudo-shuffled order.
            let mut keys: Vec<_> = entries.keys().cloned().collect();
            keys.sort_by_key(|k| crate::crypto::sha256(format!("{order_seed}{k}").as_bytes()));
            let mut shuffled = Mst::new();
            for k in keys {
                let v = entries[&k];
                shuffled
                    .insert(&k, Cid::for_cbor(&v.to_be_bytes()))
                    .unwrap();
            }
            assert_eq!(forward.root_cid(), shuffled.root_cid());
        }
    }

    #[test]
    fn diff_then_apply_restores_equality() {
        let mut rng = TestRng::new(0x358);
        for _ in 0..40 {
            let a = arb_entries(&mut rng);
            let b = arb_entries(&mut rng);
            let make = |m: &BTreeMap<String, u32>| -> Mst {
                m.iter()
                    .map(|(k, v)| (k.clone(), Cid::for_cbor(&v.to_be_bytes())))
                    .collect()
            };
            let old = make(&a);
            let new = make(&b);
            // Applying the diff to `old` must produce `new`.
            let mut patched = old.clone();
            for op in new.diff(&old) {
                match op {
                    MstDiffOp::Created { key, cid } | MstDiffOp::Updated { key, new: cid, .. } => {
                        patched.insert(&key, cid).unwrap();
                    }
                    MstDiffOp::Deleted { key, .. } => {
                        patched.remove(&key);
                    }
                }
            }
            assert_eq!(patched.root_cid(), new.root_cid());
        }
    }
}
