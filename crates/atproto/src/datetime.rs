//! Civil date/time handling without external dependencies.
//!
//! The study spans November 2022 – May 2024 and aggregates everything by day
//! or month, so the whole workspace shares this compact representation:
//! seconds since the Unix epoch plus conversions to and from civil
//! year/month/day (proleptic Gregorian, algorithm after Howard Hinnant's
//! `days_from_civil`).

use crate::error::{AtError, Result};
use std::fmt;

/// Seconds in a day.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// A point in time, stored as seconds since the Unix epoch (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Datetime(pub i64);

/// A civil calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    /// Gregorian year, e.g. 2024.
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
}

/// Number of days from the civil epoch (1970-01-01) to the given date.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let m = month as i64;
    let d = day as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Convert a day count since 1970-01-01 back to a civil date.
pub fn civil_from_days(z: i64) -> CivilDate {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    CivilDate {
        year: (if m <= 2 { y + 1 } else { y }) as i32,
        month: m,
        day: d,
    }
}

impl CivilDate {
    /// Construct a date, validating ranges (does not validate day-of-month
    /// against month length beyond 31).
    pub fn new(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(AtError::InvalidDatetime(format!(
                "{year:04}-{month:02}-{day:02}"
            )));
        }
        Ok(CivilDate { year, month, day })
    }

    /// The month as a single sortable index `year * 12 + (month - 1)`.
    pub fn month_index(&self) -> i32 {
        self.year * 12 + self.month as i32 - 1
    }

    /// Render as `YYYY-MM`.
    pub fn year_month(&self) -> String {
        format!("{:04}-{:02}", self.year, self.month)
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl Datetime {
    /// The Unix epoch.
    pub const UNIX_EPOCH: Datetime = Datetime(0);

    /// Build from a civil date at midnight UTC.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        let date = CivilDate::new(year, month, day)?;
        Ok(Datetime(
            days_from_civil(date.year, date.month, date.day) * SECONDS_PER_DAY,
        ))
    }

    /// Build from a civil date and a time of day.
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, h: u32, m: u32, s: u32) -> Result<Self> {
        if h >= 24 || m >= 60 || s >= 60 {
            return Err(AtError::InvalidDatetime(format!("{h:02}:{m:02}:{s:02}")));
        }
        Ok(Datetime(
            Self::from_ymd(year, month, day)?.0 + (h * 3600 + m * 60 + s) as i64,
        ))
    }

    /// Seconds since the Unix epoch.
    pub fn timestamp(&self) -> i64 {
        self.0
    }

    /// Microseconds since the Unix epoch (used by TIDs).
    pub fn timestamp_micros(&self) -> i64 {
        self.0 * 1_000_000
    }

    /// The civil date of this instant (UTC).
    pub fn date(&self) -> CivilDate {
        civil_from_days(self.0.div_euclid(SECONDS_PER_DAY))
    }

    /// Day index since the Unix epoch (floor).
    pub fn day_index(&self) -> i64 {
        self.0.div_euclid(SECONDS_PER_DAY)
    }

    /// Seconds into the day `[0, 86399]`.
    pub fn seconds_of_day(&self) -> i64 {
        self.0.rem_euclid(SECONDS_PER_DAY)
    }

    /// Add a number of seconds.
    pub fn plus_seconds(&self, secs: i64) -> Datetime {
        Datetime(self.0 + secs)
    }

    /// Add a number of days.
    pub fn plus_days(&self, days: i64) -> Datetime {
        Datetime(self.0 + days * SECONDS_PER_DAY)
    }

    /// Difference in whole days (`self - other`, floor on instants).
    pub fn days_since(&self, other: Datetime) -> i64 {
        self.day_index() - other.day_index()
    }

    /// ISO-8601 rendering (`YYYY-MM-DDTHH:MM:SSZ`) as used in lexicon records.
    pub fn to_iso8601(&self) -> String {
        let date = self.date();
        let sod = self.seconds_of_day();
        format!(
            "{}T{:02}:{:02}:{:02}Z",
            date,
            sod / 3600,
            (sod % 3600) / 60,
            sod % 60
        )
    }

    /// Parse the subset of ISO-8601 produced by [`Self::to_iso8601`]
    /// (`YYYY-MM-DD` or `YYYY-MM-DDTHH:MM:SSZ`).
    pub fn parse_iso8601(s: &str) -> Result<Self> {
        let err = || AtError::InvalidDatetime(s.to_string());
        let (date_part, time_part) = match s.split_once('T') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut it = date_part.split('-');
        let year: i32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if it.next().is_some() {
            return Err(err());
        }
        let mut dt = Self::from_ymd(year, month, day)?;
        if let Some(t) = time_part {
            let t = t.strip_suffix('Z').unwrap_or(t);
            let t = t.split('.').next().unwrap_or(t);
            let mut it = t.split(':');
            let h: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let m: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let sec: u32 = match it.next() {
                Some(x) => x.parse().map_err(|_| err())?,
                None => 0,
            };
            if h >= 24 || m >= 60 || sec >= 60 {
                return Err(err());
            }
            dt = dt.plus_seconds((h * 3600 + m * 60 + sec) as i64);
        }
        Ok(dt)
    }
}

impl fmt::Display for Datetime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_iso8601())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let d = Datetime::UNIX_EPOCH.date();
        assert_eq!((d.year, d.month, d.day), (1970, 1, 1));
    }

    #[test]
    fn known_dates_roundtrip() {
        let cases = [
            (2022, 11, 17),
            (2023, 2, 28),
            (2024, 2, 29), // leap day
            (2024, 4, 24),
            (2000, 1, 1),
            (1970, 1, 1),
            (1969, 12, 31),
            (1185, 6, 1),
            (1776, 7, 4),
        ];
        for (y, m, d) in cases {
            let days = days_from_civil(y, m, d);
            let back = civil_from_days(days);
            assert_eq!((back.year, back.month, back.day), (y, m, d));
        }
    }

    #[test]
    fn known_day_numbers() {
        // 2024-01-01 is 19723 days after epoch.
        assert_eq!(days_from_civil(2024, 1, 1), 19_723);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn iso8601_roundtrip() {
        let dt = Datetime::from_ymd_hms(2024, 4, 24, 13, 5, 9).unwrap();
        assert_eq!(dt.to_iso8601(), "2024-04-24T13:05:09Z");
        assert_eq!(Datetime::parse_iso8601("2024-04-24T13:05:09Z").unwrap(), dt);
        assert_eq!(
            Datetime::parse_iso8601("2024-04-24").unwrap(),
            Datetime::from_ymd(2024, 4, 24).unwrap()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Datetime::parse_iso8601("not a date").is_err());
        assert!(Datetime::parse_iso8601("2024-13-01").is_err());
        assert!(Datetime::parse_iso8601("2024-01-00").is_err());
        assert!(Datetime::parse_iso8601("2024-01-01T25:00:00Z").is_err());
    }

    #[test]
    fn day_and_month_helpers() {
        let launch = Datetime::from_ymd(2022, 11, 17).unwrap();
        let public = Datetime::from_ymd(2024, 2, 6).unwrap();
        assert!(public.days_since(launch) > 400);
        assert_eq!(launch.date().year_month(), "2022-11");
        assert_eq!(launch.date().month_index(), 2022 * 12 + 10);
        assert_eq!(launch.plus_days(1).days_since(launch), 1);
    }

    #[test]
    fn negative_times_floor_correctly() {
        let before_epoch = Datetime(-1);
        assert_eq!(before_epoch.day_index(), -1);
        assert_eq!(before_epoch.seconds_of_day(), SECONDS_PER_DAY - 1);
        let d = before_epoch.date();
        assert_eq!((d.year, d.month, d.day), (1969, 12, 31));
    }

    #[test]
    fn civil_date_validation() {
        assert!(CivilDate::new(2024, 0, 1).is_err());
        assert!(CivilDate::new(2024, 13, 1).is_err());
        assert!(CivilDate::new(2024, 1, 0).is_err());
        assert!(CivilDate::new(2024, 1, 32).is_err());
        assert!(CivilDate::new(2024, 12, 31).is_ok());
    }

    #[test]
    fn exhaustive_roundtrip_over_study_period() {
        // Every day from 2022-01-01 to 2025-01-01 survives the roundtrip.
        let start = days_from_civil(2022, 1, 1);
        let end = days_from_civil(2025, 1, 1);
        for z in start..=end {
            let c = civil_from_days(z);
            assert_eq!(days_from_civil(c.year, c.month, c.day), z);
        }
    }
}
