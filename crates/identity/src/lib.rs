//! # bsky-identity
//!
//! The identity infrastructure of the simulated Bluesky network, covering
//! everything §5 of *Looking AT the Blue Skies of Bluesky* measures:
//!
//! * [`diddoc`] — DID documents (handle, PDS endpoint, signing key, labeler
//!   endpoints) and their wire encoding.
//! * [`plc`] — the centralized PLC directory operated by Bluesky PBC, with
//!   creation/update/tombstone operations and the paginated export the study
//!   snapshots.
//! * [`resolver`] — bidirectional handle ⇄ DID resolution via DNS TXT proofs
//!   and `/.well-known/atproto-did`, plus `did:web` document fetching.
//! * [`psl`] — Public Suffix List handling for extracting registered domains
//!   from FQDN handles (Figure 3).
//! * [`registrar`] — registrar catalogue and WHOIS database with IANA-ID
//!   coverage gaps (Table 2).
//! * [`tranco`] — a Tranco-style popularity ranking for the top-1M overlap
//!   analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diddoc;
pub mod plc;
pub mod psl;
pub mod registrar;
pub mod resolver;
pub mod tranco;

pub use diddoc::DidDocument;
pub use plc::PlcDirectory;
pub use psl::PublicSuffixList;
pub use registrar::{Registrar, WhoisDatabase};
pub use resolver::IdentityResolver;
pub use tranco::TrancoList;
