//! Handle and DID resolution.
//!
//! Resolution is bidirectional (§2, §5): a handle resolves to a DID through
//! one of two ownership proofs (a DNS TXT record at `_atproto.<handle>` or an
//! HTTPS document at `/.well-known/atproto-did`), and the DID's document must
//! list that handle back for the pairing to be considered verified. DID
//! documents themselves come from the PLC directory (`did:plc`) or from
//! `/.well-known/did.json` on the handle's domain (`did:web`).

use crate::diddoc::DidDocument;
use crate::plc::PlcDirectory;
use bsky_atproto::error::{AtError, Result};
use bsky_atproto::handle::HandleProof;
use bsky_atproto::{Did, DidMethod, Handle};
use bsky_simnet::dns::DnsZoneStore;
use bsky_simnet::http::{HttpResponse, WebSpace};

/// Outcome of resolving a handle to a DID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandleResolution {
    /// The resolved DID.
    pub did: Did,
    /// Which ownership proof was found first (DNS TXT is preferred).
    pub proof: HandleProof,
}

/// The resolver the measurement pipeline and the AppView both use.
#[derive(Debug, Default)]
pub struct IdentityResolver {
    /// Cached statistics: how many resolutions used each proof mechanism.
    dns_proofs: u64,
    well_known_proofs: u64,
}

impl IdentityResolver {
    /// Create a resolver.
    pub fn new() -> IdentityResolver {
        IdentityResolver::default()
    }

    /// Resolve a handle to a DID using the network's DNS zones and web space.
    pub fn resolve_handle(
        &mut self,
        handle: &Handle,
        dns: &DnsZoneStore,
        web: &WebSpace,
    ) -> Result<HandleResolution> {
        // 1. DNS TXT record at _atproto.<handle>
        if let Some(did_str) = dns.lookup_atproto_did(handle.as_str()) {
            let did = Did::parse(&did_str)?;
            self.dns_proofs += 1;
            return Ok(HandleResolution {
                did,
                proof: HandleProof::DnsTxt,
            });
        }
        // 2. HTTPS /.well-known/atproto-did
        match web.get(&handle.well_known_url()) {
            HttpResponse::Ok(body) => {
                let did = Did::parse(body.trim())?;
                self.well_known_proofs += 1;
                Ok(HandleResolution {
                    did,
                    proof: HandleProof::WellKnown,
                })
            }
            _ => Err(AtError::InvalidHandle(format!(
                "no ownership proof found for {handle}"
            ))),
        }
    }

    /// Resolve a DID to its document.
    pub fn resolve_did(
        &self,
        did: &Did,
        plc: &PlcDirectory,
        web: &WebSpace,
    ) -> Result<DidDocument> {
        match did.method() {
            DidMethod::Plc => plc
                .resolve(did)
                .cloned()
                .ok_or_else(|| AtError::InvalidDid(format!("{did} not in PLC directory"))),
            DidMethod::Web => {
                let domain = did.web_domain().expect("did:web has a domain");
                let url = format!("https://{domain}/.well-known/did.json");
                match web.get(&url) {
                    HttpResponse::Ok(body) => DidDocument::from_wire(&body),
                    _ => Err(AtError::InvalidDid(format!(
                        "did:web document unavailable at {url}"
                    ))),
                }
            }
        }
    }

    /// Fully verify a handle: resolve handle → DID, fetch the DID document,
    /// and check that the document lists the same handle back.
    pub fn verify_handle(
        &mut self,
        handle: &Handle,
        dns: &DnsZoneStore,
        web: &WebSpace,
        plc: &PlcDirectory,
    ) -> Result<(DidDocument, HandleProof)> {
        let resolution = self.resolve_handle(handle, dns, web)?;
        let document = self.resolve_did(&resolution.did, plc, web)?;
        if document.handle != *handle {
            return Err(AtError::InvalidHandle(format!(
                "bidirectional check failed: {handle} resolves to {} but its document claims {}",
                resolution.did, document.handle
            )));
        }
        Ok((document, resolution.proof))
    }

    /// Number of successful resolutions that used a DNS TXT proof.
    pub fn dns_proofs(&self) -> u64 {
        self.dns_proofs
    }

    /// Number of successful resolutions that used the well-known proof.
    pub fn well_known_proofs(&self) -> u64 {
        self.well_known_proofs
    }
}

/// Helpers for publishing ownership proofs (used by PDSes when accounts are
/// created or when handles change).
pub mod publish {
    use super::*;

    /// Publish a DNS TXT ownership proof for a handle.
    pub fn dns_proof(dns: &mut DnsZoneStore, handle: &Handle, did: &Did) {
        dns.set_txt(&handle.atproto_txt_name(), vec![format!("did={did}")]);
    }

    /// Publish a well-known HTTPS ownership proof for a handle.
    pub fn well_known_proof(web: &mut WebSpace, handle: &Handle, did: &Did) {
        web.publish(&handle.well_known_url(), did.to_string());
    }

    /// Publish a `did:web` DID document on its domain.
    pub fn did_web_document(web: &mut WebSpace, document: &DidDocument) {
        if let Some(domain) = document.did.web_domain() {
            web.publish(
                &format!("https://{domain}/.well-known/did.json"),
                document.to_wire(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Datetime;

    struct World {
        dns: DnsZoneStore,
        web: WebSpace,
        plc: PlcDirectory,
        resolver: IdentityResolver,
    }

    fn world() -> World {
        World {
            dns: DnsZoneStore::new(),
            web: WebSpace::new(),
            plc: PlcDirectory::new(),
            resolver: IdentityResolver::new(),
        }
    }

    fn register_plc(world: &mut World, name: &str, handle: &str) -> DidDocument {
        let doc = DidDocument::new(
            Did::plc_from_seed(name.as_bytes()),
            Handle::parse(handle).unwrap(),
            format!("key-{name}"),
            "https://pds001.bsky.network".into(),
        );
        world
            .plc
            .create(doc.clone(), Datetime::from_ymd(2024, 3, 1).unwrap())
            .unwrap();
        doc
    }

    #[test]
    fn dns_txt_proof_preferred() {
        let mut w = world();
        let doc = register_plc(&mut w, "alice", "alice.example.com");
        let handle = doc.handle.clone();
        publish::dns_proof(&mut w.dns, &handle, &doc.did);
        publish::well_known_proof(&mut w.web, &handle, &doc.did);

        let (resolved, proof) = w
            .resolver
            .verify_handle(&handle, &w.dns, &w.web, &w.plc)
            .unwrap();
        assert_eq!(resolved.did, doc.did);
        assert_eq!(proof, HandleProof::DnsTxt);
        assert_eq!(w.resolver.dns_proofs(), 1);
        assert_eq!(w.resolver.well_known_proofs(), 0);
    }

    #[test]
    fn well_known_fallback() {
        let mut w = world();
        let doc = register_plc(&mut w, "bob", "bob.example.org");
        publish::well_known_proof(&mut w.web, &doc.handle, &doc.did);
        let (_, proof) = w
            .resolver
            .verify_handle(&doc.handle, &w.dns, &w.web, &w.plc)
            .unwrap();
        assert_eq!(proof, HandleProof::WellKnown);
        assert_eq!(w.resolver.well_known_proofs(), 1);
    }

    #[test]
    fn missing_proof_fails() {
        let mut w = world();
        let doc = register_plc(&mut w, "carol", "carol.example.net");
        assert!(w
            .resolver
            .verify_handle(&doc.handle, &w.dns, &w.web, &w.plc)
            .is_err());
    }

    #[test]
    fn bidirectional_mismatch_fails() {
        let mut w = world();
        let doc = register_plc(&mut w, "dave", "dave.example.com");
        // The DNS proof claims a handle the document does not list.
        let imposter_handle = Handle::parse("imposter.example.com").unwrap();
        publish::dns_proof(&mut w.dns, &imposter_handle, &doc.did);
        assert!(w
            .resolver
            .verify_handle(&imposter_handle, &w.dns, &w.web, &w.plc)
            .is_err());
    }

    #[test]
    fn did_web_resolution() {
        let mut w = world();
        let did = Did::web("blog.example.org").unwrap();
        let doc = DidDocument::new(
            did.clone(),
            Handle::parse("blog.example.org").unwrap(),
            "key-web".into(),
            "https://self-hosted.example".into(),
        );
        publish::did_web_document(&mut w.web, &doc);
        publish::dns_proof(&mut w.dns, &doc.handle, &did);
        let (resolved, proof) = w
            .resolver
            .verify_handle(&doc.handle, &w.dns, &w.web, &w.plc)
            .unwrap();
        assert_eq!(resolved, doc);
        assert_eq!(proof, HandleProof::DnsTxt);
        // Unpublishing the document breaks DID resolution.
        w.web
            .unpublish("https://blog.example.org/.well-known/did.json");
        assert!(w.resolver.resolve_did(&did, &w.plc, &w.web).is_err());
    }

    #[test]
    fn tombstoned_plc_did_does_not_resolve() {
        let mut w = world();
        let doc = register_plc(&mut w, "erin", "erin.bsky.social");
        w.plc
            .tombstone(&doc.did, Datetime::from_ymd(2024, 4, 1).unwrap())
            .unwrap();
        assert!(w.resolver.resolve_did(&doc.did, &w.plc, &w.web).is_err());
    }
}
