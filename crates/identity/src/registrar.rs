//! Registrars and WHOIS.
//!
//! §5 ("Registrar Concentration") runs a WHOIS scan over the registered
//! domains behind custom handles, extracts IANA registrar IDs where present,
//! and reports concentration (Table 2). This module provides the registrar
//! catalogue and a WHOIS database with the same coverage gaps the paper
//! describes: not every domain has retrievable WHOIS data, and ccTLD records
//! frequently omit the IANA ID.

use std::collections::BTreeMap;

/// A domain registrar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registrar {
    /// IANA registrar ID (None for locally-accredited ccTLD registrars).
    pub iana_id: Option<u32>,
    /// Registrar name as it appears in WHOIS.
    pub name: String,
}

/// The registrar catalogue used by the synthetic population, mirroring the
/// real-world market shares Table 2 reports.
pub fn default_catalogue() -> Vec<Registrar> {
    let named: [(u32, &str); 7] = [
        (1068, "NameCheap, Inc."),
        (1910, "CloudFlare, Inc."),
        (895, "Squarespace Domains"),
        (146, "GoDaddy.com, LLC"),
        (1861, "Porkbun, LLC"),
        (69, "Tucows Domains Inc."),
        (49, "GMO Internet Group"),
    ];
    let mut catalogue: Vec<Registrar> = named
        .iter()
        .map(|(id, name)| Registrar {
            iana_id: Some(*id),
            name: (*name).to_string(),
        })
        .collect();
    // A long tail of smaller ICANN-accredited registrars...
    for i in 0..230u32 {
        catalogue.push(Registrar {
            iana_id: Some(2000 + i),
            name: format!("Registrar {:03} LLC", i),
        });
    }
    // ...and locally-accredited ccTLD registrars without IANA IDs.
    for i in 0..12u32 {
        catalogue.push(Registrar {
            iana_id: None,
            name: format!("ccTLD Registry Partner {i:02}"),
        });
    }
    catalogue
}

/// A WHOIS record for a registered domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhoisRecord {
    /// The registered domain.
    pub domain: String,
    /// The registrar, if WHOIS data could be retrieved at all.
    pub registrar: Option<Registrar>,
}

impl WhoisRecord {
    /// The IANA ID, when both the record and the ID are available.
    pub fn iana_id(&self) -> Option<u32> {
        self.registrar.as_ref().and_then(|r| r.iana_id)
    }
}

/// The WHOIS database queried by the study's scan.
#[derive(Debug, Clone, Default)]
pub struct WhoisDatabase {
    records: BTreeMap<String, WhoisRecord>,
    queries: std::cell::Cell<u64>,
}

impl WhoisDatabase {
    /// Create an empty database.
    pub fn new() -> WhoisDatabase {
        WhoisDatabase::default()
    }

    /// Register a domain with its registrar (or `None` when WHOIS data will
    /// be unavailable for it).
    pub fn register(&mut self, domain: &str, registrar: Option<Registrar>) {
        let domain = domain.to_ascii_lowercase();
        self.records
            .insert(domain.clone(), WhoisRecord { domain, registrar });
    }

    /// Perform a WHOIS query. `None` means no data could be retrieved.
    pub fn query(&self, domain: &str) -> Option<&WhoisRecord> {
        self.queries.set(self.queries.get() + 1);
        self.records.get(&domain.to_ascii_lowercase())
    }

    /// Number of domains with records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total queries served.
    pub fn queries_served(&self) -> u64 {
        self.queries.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_table2_registrars() {
        let catalogue = default_catalogue();
        assert!(catalogue.len() >= 249, "paper finds 249 registrars");
        let namecheap = catalogue
            .iter()
            .find(|r| r.name.contains("NameCheap"))
            .unwrap();
        assert_eq!(namecheap.iana_id, Some(1068));
        let cloudflare = catalogue
            .iter()
            .find(|r| r.name.contains("CloudFlare"))
            .unwrap();
        assert_eq!(cloudflare.iana_id, Some(1910));
        let without_id = catalogue.iter().filter(|r| r.iana_id.is_none()).count();
        assert!(without_id > 0, "some ccTLD registrars lack IANA IDs");
        // IANA IDs are unique where present.
        let mut ids: Vec<u32> = catalogue.iter().filter_map(|r| r.iana_id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn whois_query_paths() {
        let mut db = WhoisDatabase::new();
        let catalogue = default_catalogue();
        db.register("example.com", Some(catalogue[0].clone()));
        db.register(
            "example.co.jp",
            Some(
                catalogue
                    .iter()
                    .find(|r| r.iana_id.is_none())
                    .unwrap()
                    .clone(),
            ),
        );
        db.register("hidden.example", None);

        let rec = db.query("EXAMPLE.com").unwrap();
        assert_eq!(rec.iana_id(), Some(1068));
        let cc = db.query("example.co.jp").unwrap();
        assert!(cc.registrar.is_some());
        assert_eq!(cc.iana_id(), None);
        let hidden = db.query("hidden.example").unwrap();
        assert!(hidden.registrar.is_none());
        assert!(db.query("unregistered.example").is_none());
        assert_eq!(db.len(), 3);
        assert_eq!(db.queries_served(), 4);
    }
}
