//! DID documents.
//!
//! A DID document stores the service information of an account: its handle,
//! the PDS endpoint hosting its repository, the signing key used to verify
//! repo commits, and — for Labelers — the labeler service endpoint (§2).
//! Documents are served either by the PLC directory (`did:plc`) or from the
//! owner's domain at `/.well-known/did.json` (`did:web`).

use bsky_atproto::cbor::{self, Value};
use bsky_atproto::crypto::{from_hex, to_hex};
use bsky_atproto::error::{AtError, Result};
use bsky_atproto::{Did, Handle};

/// A service endpoint advertised in a DID document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Service id, e.g. `atproto_pds` or `atproto_labeler`.
    pub id: String,
    /// Service type, e.g. `AtprotoPersonalDataServer`.
    pub service_type: String,
    /// Endpoint URL.
    pub endpoint: String,
}

/// The parsed DID document of an account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DidDocument {
    /// The account's DID.
    pub did: Did,
    /// The account's current handle (`alsoKnownAs`).
    pub handle: Handle,
    /// Multibase rendering of the account's signing key.
    pub signing_key: String,
    /// Advertised services.
    pub services: Vec<ServiceEntry>,
}

/// Standard service id of the PDS entry.
pub const SERVICE_PDS: &str = "atproto_pds";
/// Standard service id of a labeler endpoint entry.
pub const SERVICE_LABELER: &str = "atproto_labeler";

impl DidDocument {
    /// Create a document with a PDS endpoint.
    pub fn new(did: Did, handle: Handle, signing_key: String, pds_endpoint: String) -> DidDocument {
        DidDocument {
            did,
            handle,
            signing_key,
            services: vec![ServiceEntry {
                id: SERVICE_PDS.to_string(),
                service_type: "AtprotoPersonalDataServer".to_string(),
                endpoint: pds_endpoint,
            }],
        }
    }

    /// The PDS endpoint, if present.
    pub fn pds_endpoint(&self) -> Option<&str> {
        self.service(SERVICE_PDS)
    }

    /// The labeler endpoint, if the account is a Labeler.
    pub fn labeler_endpoint(&self) -> Option<&str> {
        self.service(SERVICE_LABELER)
    }

    /// Look up a service endpoint by id.
    pub fn service(&self, id: &str) -> Option<&str> {
        self.services
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.endpoint.as_str())
    }

    /// Add or replace a service entry.
    pub fn set_service(&mut self, id: &str, service_type: &str, endpoint: &str) {
        if let Some(entry) = self.services.iter_mut().find(|s| s.id == id) {
            entry.service_type = service_type.to_string();
            entry.endpoint = endpoint.to_string();
        } else {
            self.services.push(ServiceEntry {
                id: id.to_string(),
                service_type: service_type.to_string(),
                endpoint: endpoint.to_string(),
            });
        }
    }

    /// Mark this account as a labeler with the given endpoint.
    pub fn set_labeler_endpoint(&mut self, endpoint: &str) {
        self.set_service(SERVICE_LABELER, "AtprotoLabeler", endpoint);
    }

    /// Encode to the CBOR data model.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("id", Value::text(self.did.to_string())),
            (
                "alsoKnownAs",
                Value::Array(vec![Value::text(format!("at://{}", self.handle))]),
            ),
            ("signingKey", Value::text(&self.signing_key)),
            (
                "service",
                Value::Array(
                    self.services
                        .iter()
                        .map(|s| {
                            Value::map([
                                ("id", Value::text(format!("#{}", s.id))),
                                ("type", Value::text(&s.service_type)),
                                ("serviceEndpoint", Value::text(&s.endpoint)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from the CBOR data model.
    pub fn from_value(value: &Value) -> Result<DidDocument> {
        let did = Did::parse(
            value
                .get("id")
                .and_then(Value::as_text)
                .ok_or_else(|| AtError::InvalidRecord("did doc missing id".into()))?,
        )?;
        let aka = value
            .get("alsoKnownAs")
            .and_then(Value::as_array)
            .and_then(|a| a.first())
            .and_then(Value::as_text)
            .ok_or_else(|| AtError::InvalidRecord("did doc missing alsoKnownAs".into()))?;
        let handle = Handle::parse(aka.strip_prefix("at://").unwrap_or(aka))?;
        let signing_key = value
            .get("signingKey")
            .and_then(Value::as_text)
            .unwrap_or_default()
            .to_string();
        let services = value
            .get("service")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|s| {
                Some(ServiceEntry {
                    id: s
                        .get("id")
                        .and_then(Value::as_text)?
                        .trim_start_matches('#')
                        .to_string(),
                    service_type: s.get("type").and_then(Value::as_text)?.to_string(),
                    endpoint: s
                        .get("serviceEndpoint")
                        .and_then(Value::as_text)?
                        .to_string(),
                })
            })
            .collect();
        Ok(DidDocument {
            did,
            handle,
            signing_key,
            services,
        })
    }

    /// Serialise to the wire form stored at `/.well-known/did.json` and in
    /// the PLC directory (hex-encoded DAG-CBOR in this simulation).
    pub fn to_wire(&self) -> String {
        to_hex(&cbor::encode(&self.to_value()))
    }

    /// Parse the wire form.
    pub fn from_wire(s: &str) -> Result<DidDocument> {
        let bytes = from_hex(s.trim())?;
        DidDocument::from_value(&cbor::decode(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::crypto::SigningKey;

    fn doc() -> DidDocument {
        DidDocument::new(
            Did::plc_from_seed(b"alice"),
            Handle::parse("alice.bsky.social").unwrap(),
            SigningKey::from_seed(b"alice-key")
                .verifying_key()
                .to_multibase(),
            "https://pds001.bsky.network".into(),
        )
    }

    #[test]
    fn roundtrip_wire_form() {
        let d = doc();
        let wire = d.to_wire();
        let back = DidDocument::from_wire(&wire).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.pds_endpoint(), Some("https://pds001.bsky.network"));
        assert!(back.labeler_endpoint().is_none());
    }

    #[test]
    fn labeler_endpoint_roundtrip() {
        let mut d = doc();
        d.set_labeler_endpoint("https://labeler.example/xrpc");
        let back = DidDocument::from_wire(&d.to_wire()).unwrap();
        assert_eq!(
            back.labeler_endpoint(),
            Some("https://labeler.example/xrpc")
        );
        assert_eq!(back.services.len(), 2);
        // Setting again replaces rather than duplicating.
        d.set_labeler_endpoint("https://labeler2.example/xrpc");
        assert_eq!(d.services.len(), 2);
        assert_eq!(d.labeler_endpoint(), Some("https://labeler2.example/xrpc"));
    }

    #[test]
    fn pds_migration_updates_endpoint() {
        let mut d = doc();
        d.set_service(
            SERVICE_PDS,
            "AtprotoPersonalDataServer",
            "https://self-hosted.example",
        );
        assert_eq!(d.pds_endpoint(), Some("https://self-hosted.example"));
        assert_eq!(d.services.len(), 1);
    }

    #[test]
    fn from_wire_rejects_garbage() {
        assert!(DidDocument::from_wire("zz").is_err());
        assert!(DidDocument::from_wire("").is_err());
        assert!(DidDocument::from_wire("00ff00").is_err());
    }
}
