//! The PLC directory.
//!
//! `plc.directory` is the centralized service operated by Bluesky PBC that
//! stores the DID documents of every `did:plc` identity (§2, §5). The study
//! downloaded a full snapshot of it (5,077,159 documents) over one week. The
//! simulated directory supports creation, updates (PDS migration, handle
//! change, key rotation), tombstoning, and a paginated export used by the
//! measurement pipeline.

use crate::diddoc::DidDocument;
use bsky_atproto::error::{AtError, Result};
use bsky_atproto::{Datetime, Did};
use std::collections::BTreeMap;

/// One operation in an identity's PLC log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlcOperation {
    /// When the operation was registered.
    pub at: Datetime,
    /// A human-readable description (`create`, `update_handle`, ...).
    pub kind: String,
}

/// The PLC directory service.
#[derive(Debug, Clone, Default)]
pub struct PlcDirectory {
    documents: BTreeMap<String, DidDocument>,
    logs: BTreeMap<String, Vec<PlcOperation>>,
    tombstones: BTreeMap<String, Datetime>,
}

impl PlcDirectory {
    /// Create an empty directory.
    pub fn new() -> PlcDirectory {
        PlcDirectory::default()
    }

    /// Register a new identity. Fails if the DID already exists or is not a
    /// `did:plc`.
    pub fn create(&mut self, document: DidDocument, at: Datetime) -> Result<()> {
        if document.did.method() != bsky_atproto::DidMethod::Plc {
            return Err(AtError::InvalidDid(format!(
                "PLC directory only stores did:plc, got {}",
                document.did
            )));
        }
        let key = document.did.to_string();
        if self.documents.contains_key(&key) || self.tombstones.contains_key(&key) {
            return Err(AtError::InvalidDid(format!("{key} already registered")));
        }
        self.logs
            .entry(key.clone())
            .or_default()
            .push(PlcOperation {
                at,
                kind: "create".into(),
            });
        self.documents.insert(key, document);
        Ok(())
    }

    /// Update an identity's document (handle change, PDS migration, ...).
    pub fn update(
        &mut self,
        did: &Did,
        kind: &str,
        at: Datetime,
        mutate: impl FnOnce(&mut DidDocument),
    ) -> Result<()> {
        let key = did.to_string();
        let doc = self
            .documents
            .get_mut(&key)
            .ok_or_else(|| AtError::InvalidDid(format!("{key} not registered")))?;
        mutate(doc);
        self.logs.entry(key).or_default().push(PlcOperation {
            at,
            kind: kind.to_string(),
        });
        Ok(())
    }

    /// Tombstone (delete) an identity.
    pub fn tombstone(&mut self, did: &Did, at: Datetime) -> Result<()> {
        let key = did.to_string();
        if self.documents.remove(&key).is_none() {
            return Err(AtError::InvalidDid(format!("{key} not registered")));
        }
        self.logs
            .entry(key.clone())
            .or_default()
            .push(PlcOperation {
                at,
                kind: "tombstone".into(),
            });
        self.tombstones.insert(key, at);
        Ok(())
    }

    /// Resolve a DID document.
    pub fn resolve(&self, did: &Did) -> Option<&DidDocument> {
        self.documents.get(&did.to_string())
    }

    /// Whether the DID has been tombstoned.
    pub fn is_tombstoned(&self, did: &Did) -> bool {
        self.tombstones.contains_key(&did.to_string())
    }

    /// The operation log of an identity.
    pub fn log(&self, did: &Did) -> &[PlcOperation] {
        self.logs
            .get(&did.to_string())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Paginated export: documents in DID order, starting after `cursor`.
    /// Returns the page and the next cursor (None when exhausted). This is
    /// what the study's snapshot download uses.
    pub fn export(
        &self,
        cursor: Option<&str>,
        page_size: usize,
    ) -> (Vec<&DidDocument>, Option<String>) {
        let page_size = page_size.max(1);
        let iter: Box<dyn Iterator<Item = (&String, &DidDocument)>> = match cursor {
            Some(c) => Box::new(self.documents.range::<String, _>((
                std::ops::Bound::Excluded(c.to_string()),
                std::ops::Bound::Unbounded,
            ))),
            None => Box::new(self.documents.iter()),
        };
        let page: Vec<&DidDocument> = iter.take(page_size).map(|(_, d)| d).collect();
        let next = if page.len() == page_size {
            page.last().map(|d| d.did.to_string())
        } else {
            None
        };
        (page, next)
    }

    /// Iterate all live documents.
    pub fn iter(&self) -> impl Iterator<Item = &DidDocument> {
        self.documents.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Handle;

    fn doc(name: &str) -> DidDocument {
        DidDocument::new(
            Did::plc_from_seed(name.as_bytes()),
            Handle::parse(&format!("{name}.bsky.social")).unwrap(),
            format!("key-{name}"),
            "https://pds001.bsky.network".into(),
        )
    }

    fn when() -> Datetime {
        Datetime::from_ymd(2024, 3, 1).unwrap()
    }

    #[test]
    fn create_resolve_update_tombstone() {
        let mut plc = PlcDirectory::new();
        let d = doc("alice");
        let did = d.did.clone();
        plc.create(d, when()).unwrap();
        assert_eq!(plc.len(), 1);
        assert!(plc.resolve(&did).is_some());

        plc.update(&did, "update_handle", when().plus_days(1), |doc| {
            doc.handle = Handle::parse("alice.example.com").unwrap();
        })
        .unwrap();
        assert_eq!(
            plc.resolve(&did).unwrap().handle.as_str(),
            "alice.example.com"
        );
        assert_eq!(plc.log(&did).len(), 2);
        assert_eq!(plc.log(&did)[1].kind, "update_handle");

        plc.tombstone(&did, when().plus_days(2)).unwrap();
        assert!(plc.resolve(&did).is_none());
        assert!(plc.is_tombstoned(&did));
        assert_eq!(plc.log(&did).len(), 3);
        // Cannot recreate a tombstoned DID.
        assert!(plc.create(doc("alice"), when()).is_err());
    }

    #[test]
    fn duplicate_and_missing_errors() {
        let mut plc = PlcDirectory::new();
        plc.create(doc("bob"), when()).unwrap();
        assert!(plc.create(doc("bob"), when()).is_err());
        let missing = Did::plc_from_seed(b"missing");
        assert!(plc.update(&missing, "x", when(), |_| {}).is_err());
        assert!(plc.tombstone(&missing, when()).is_err());
        assert!(plc.log(&missing).is_empty());
    }

    #[test]
    fn rejects_did_web() {
        let mut plc = PlcDirectory::new();
        let d = DidDocument::new(
            Did::web("example.com").unwrap(),
            Handle::parse("example.com").unwrap(),
            "key".into(),
            "https://pds.example".into(),
        );
        assert!(plc.create(d, when()).is_err());
    }

    #[test]
    fn paginated_export_covers_everything_once() {
        let mut plc = PlcDirectory::new();
        for i in 0..57 {
            plc.create(doc(&format!("user{i}")), when()).unwrap();
        }
        let mut seen = Vec::new();
        let mut cursor: Option<String> = None;
        let mut pages = 0;
        loop {
            let (page, next) = plc.export(cursor.as_deref(), 10);
            seen.extend(page.iter().map(|d| d.did.to_string()));
            pages += 1;
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
            assert!(pages < 100, "pagination did not terminate");
        }
        assert_eq!(seen.len(), 57);
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 57);
        assert!(pages >= 6);
    }
}
