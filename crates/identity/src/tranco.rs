//! Tranco-style domain popularity ranking.
//!
//! §5 cross-references the registered domains behind custom handles with the
//! Tranco top-1M list and finds only 2.8 % of them inside it (media outlets,
//! tech companies, universities). This module provides a synthetic ranking
//! with the same query interface.

use std::collections::BTreeMap;

/// A popularity ranking of registered domains (rank 1 = most popular).
#[derive(Debug, Clone, Default)]
pub struct TrancoList {
    ranks: BTreeMap<String, u32>,
}

impl TrancoList {
    /// Create an empty list.
    pub fn new() -> TrancoList {
        TrancoList::default()
    }

    /// Build a list from domains in rank order (first = rank 1).
    pub fn from_ranked(domains: &[String]) -> TrancoList {
        let mut list = TrancoList::new();
        for (i, d) in domains.iter().enumerate() {
            list.insert(d, i as u32 + 1);
        }
        list
    }

    /// Insert a domain at a rank (keeps the best rank on duplicates).
    pub fn insert(&mut self, domain: &str, rank: u32) {
        let domain = domain.to_ascii_lowercase();
        self.ranks
            .entry(domain)
            .and_modify(|r| *r = (*r).min(rank))
            .or_insert(rank);
    }

    /// The rank of a domain, if listed.
    pub fn rank(&self, domain: &str) -> Option<u32> {
        self.ranks.get(&domain.to_ascii_lowercase()).copied()
    }

    /// Whether a domain is within the top `n`.
    pub fn in_top(&self, domain: &str, n: u32) -> bool {
        self.rank(domain).map(|r| r <= n).unwrap_or(false)
    }

    /// Number of listed domains.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_queries() {
        let list = TrancoList::from_ranked(&[
            "google.com".into(),
            "amazonaws.com".into(),
            "nytimes.com".into(),
        ]);
        assert_eq!(list.rank("google.com"), Some(1));
        assert_eq!(list.rank("NYTIMES.com"), Some(3));
        assert_eq!(list.rank("unknown.example"), None);
        assert!(list.in_top("amazonaws.com", 2));
        assert!(!list.in_top("nytimes.com", 2));
        assert!(!list.in_top("unknown.example", 1_000_000));
        assert_eq!(list.len(), 3);
        assert!(!list.is_empty());
    }

    #[test]
    fn duplicate_keeps_best_rank() {
        let mut list = TrancoList::new();
        list.insert("example.com", 500);
        list.insert("example.com", 100);
        list.insert("example.com", 900);
        assert_eq!(list.rank("example.com"), Some(100));
    }
}
