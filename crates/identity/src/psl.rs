//! Public Suffix List handling.
//!
//! §5 extracts *registered domains* (effective second-level domains) from
//! FQDN handles using the Public Suffix List, so that `alice.github.io`
//! groups under `github.io` (a private suffix) while `alice.example.co.uk`
//! groups under `example.co.uk`. We embed a compact PSL subset that covers
//! the suffixes appearing in the synthetic handle population; the lookup
//! logic (longest matching suffix, wildcard rules) follows the PSL algorithm.

use std::collections::BTreeSet;

/// A compiled Public Suffix List.
#[derive(Debug, Clone)]
pub struct PublicSuffixList {
    suffixes: BTreeSet<String>,
    wildcards: BTreeSet<String>,
}

/// ICANN suffixes embedded by default.
const ICANN_SUFFIXES: &[&str] = &[
    "com", "org", "net", "edu", "gov", "mil", "int", "io", "social", "app", "dev", "cool", "work",
    "world", "me", "tv", "fm", "blue", "sh", "xyz", "cloud", "team", "online", "site", "club",
    "art", "blog", "wiki", "jp", "de", "fr", "br", "uk", "us", "ca", "au", "nl", "kr", "es", "it",
    "pl", "se", "ch", "at", "be", "cz", "eu", "info", "biz", "name", "pro",
    // Second-level ccTLD suffixes.
    "co.uk", "org.uk", "ac.uk", "com.br", "net.br", "org.br", "co.jp", "ne.jp", "or.jp", "ac.jp",
    "com.au", "net.au", "org.au", "co.kr", "or.kr", "com.es", "co.at", "co.nz",
];

/// Private-section suffixes embedded by default (operators offering
/// subdomains to the public, so each subdomain is its own registrable name).
const PRIVATE_SUFFIXES: &[&str] = &[
    "github.io",
    "gitlab.io",
    "netlify.app",
    "vercel.app",
    "pages.dev",
    "web.app",
    "herokuapp.com",
    "glitch.me",
    "neocities.org",
];

impl Default for PublicSuffixList {
    fn default() -> Self {
        let mut psl = PublicSuffixList {
            suffixes: BTreeSet::new(),
            wildcards: BTreeSet::new(),
        };
        for s in ICANN_SUFFIXES.iter().chain(PRIVATE_SUFFIXES) {
            psl.add_suffix(s);
        }
        psl
    }
}

impl PublicSuffixList {
    /// The embedded default list.
    pub fn embedded() -> PublicSuffixList {
        PublicSuffixList::default()
    }

    /// Create an empty list (for tests or custom ecosystems).
    pub fn empty() -> PublicSuffixList {
        PublicSuffixList {
            suffixes: BTreeSet::new(),
            wildcards: BTreeSet::new(),
        }
    }

    /// Add a suffix rule, e.g. `com`, `co.uk`, `github.io` or `*.example`.
    pub fn add_suffix(&mut self, suffix: &str) {
        let suffix = suffix.to_ascii_lowercase();
        if let Some(rest) = suffix.strip_prefix("*.") {
            self.wildcards.insert(rest.to_string());
        } else {
            self.suffixes.insert(suffix);
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.suffixes.len() + self.wildcards.len()
    }

    /// Whether the list has no rules.
    pub fn is_empty(&self) -> bool {
        self.suffixes.is_empty() && self.wildcards.is_empty()
    }

    /// Whether `domain` is itself a public suffix.
    pub fn is_public_suffix(&self, domain: &str) -> bool {
        let domain = domain.to_ascii_lowercase();
        if self.suffixes.contains(&domain) {
            return true;
        }
        // `foo.bar` matches a wildcard rule `*.bar`.
        if let Some((_, parent)) = domain.split_once('.') {
            if self.wildcards.contains(parent) {
                return true;
            }
        }
        false
    }

    /// The length (in labels) of the longest public suffix of `labels`, or 0.
    fn matching_suffix_len(&self, labels: &[&str]) -> usize {
        let mut best = 0usize;
        for start in 0..labels.len() {
            let candidate = labels[start..].join(".");
            if self.suffixes.contains(&candidate) {
                best = best.max(labels.len() - start);
            }
            // Wildcard: `*.candidate` covers one extra label to the left.
            if start > 0 && self.wildcards.contains(&candidate) {
                best = best.max(labels.len() - start + 1);
            }
        }
        best
    }

    /// The registered (registrable) domain of an FQDN: the public suffix plus
    /// one label. Returns `None` when the FQDN *is* a public suffix or when
    /// no rule matches and the name has fewer than two labels.
    pub fn registered_domain(&self, fqdn: &str) -> Option<String> {
        let fqdn = fqdn.to_ascii_lowercase();
        let labels: Vec<&str> = fqdn.split('.').filter(|l| !l.is_empty()).collect();
        if labels.len() < 2 {
            return None;
        }
        let suffix_len = self.matching_suffix_len(&labels);
        if suffix_len == 0 {
            // PSL prevailing rule: unknown TLDs behave as a 1-label suffix.
            return Some(labels[labels.len() - 2..].join("."));
        }
        if suffix_len >= labels.len() {
            return None; // The whole name is a public suffix.
        }
        Some(labels[labels.len() - suffix_len - 1..].join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tlds() {
        let psl = PublicSuffixList::embedded();
        assert_eq!(
            psl.registered_domain("alice.bsky.social"),
            Some("bsky.social".into())
        );
        assert_eq!(
            psl.registered_domain("example.com"),
            Some("example.com".into())
        );
        assert_eq!(
            psl.registered_domain("a.b.c.example.com"),
            Some("example.com".into())
        );
        assert_eq!(psl.registered_domain("com"), None);
        assert_eq!(psl.registered_domain(""), None);
        assert_eq!(psl.registered_domain("single"), None);
    }

    #[test]
    fn multi_label_suffixes() {
        let psl = PublicSuffixList::embedded();
        assert_eq!(
            psl.registered_domain("news.bbc.co.uk"),
            Some("bbc.co.uk".into())
        );
        assert_eq!(psl.registered_domain("bbc.co.uk"), Some("bbc.co.uk".into()));
        assert_eq!(psl.registered_domain("co.uk"), None);
        assert_eq!(
            psl.registered_domain("user.blog.com.br"),
            Some("blog.com.br".into())
        );
    }

    #[test]
    fn private_suffixes_group_per_user() {
        let psl = PublicSuffixList::embedded();
        // The paper finds 35 accounts using github.io subdomains as handles.
        assert_eq!(
            psl.registered_domain("alice.github.io"),
            Some("alice.github.io".into())
        );
        assert_eq!(
            psl.registered_domain("deep.alice.github.io"),
            Some("alice.github.io".into())
        );
        assert_eq!(psl.registered_domain("github.io"), None);
        assert!(psl.is_public_suffix("github.io"));
        assert!(!psl.is_public_suffix("alice.github.io"));
    }

    #[test]
    fn unknown_tld_prevailing_rule() {
        let psl = PublicSuffixList::embedded();
        assert_eq!(
            psl.registered_domain("host.example.unknowntld"),
            Some("example.unknowntld".into())
        );
    }

    #[test]
    fn wildcard_rules() {
        let mut psl = PublicSuffixList::empty();
        psl.add_suffix("*.ck");
        psl.add_suffix("ck");
        assert!(psl.is_public_suffix("www.ck"));
        assert_eq!(
            psl.registered_domain("shop.site.www.ck"),
            Some("site.www.ck".into())
        );
        assert_eq!(
            psl.registered_domain("site.www.ck"),
            Some("site.www.ck".into())
        );
        assert!(psl.len() == 2 && !psl.is_empty());
    }

    #[test]
    fn case_insensitive() {
        let psl = PublicSuffixList::embedded();
        assert_eq!(
            psl.registered_domain("Alice.Example.COM"),
            Some("example.com".into())
        );
        assert!(psl.is_public_suffix("COM"));
    }
}
