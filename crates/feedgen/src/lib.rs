//! # bsky-feedgen
//!
//! Feed Generators: the content-recommendation ecosystem of §7 of the paper.
//!
//! * [`regex`] — a small regular-expression engine (the Skyfeed-only feature
//!   of Table 5).
//! * [`filter`] — declarative feed pipelines: inputs and filters.
//! * [`generator`] — Feed Generator instances: curation modes (pipeline,
//!   personalised, manual), retention policies, `getFeedSkeleton`, likes.
//! * [`faas`] — the Feed-Generator-as-a-Service platforms of Table 5 with
//!   their feature matrices and observed market shares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faas;
pub mod filter;
pub mod generator;
pub mod regex;

pub use faas::{FaasPlatform, Pricing};
pub use filter::{FeedFilter, FeedInput, FeedPipeline};
pub use generator::{CurationMode, FeedEntry, FeedGenerator, RetentionPolicy};
pub use regex::Regex;
