//! Feed Generators.
//!
//! A Feed Generator is declared by an `app.bsky.feed.generator` record in its
//! creator's repository pointing at a hosting service; the service consumes
//! the firehose and answers `getFeedSkeleton` with the URIs of curated posts
//! (§2, §7). Generators differ in how they curate (filter pipelines vs
//! personalised algorithms), how much history they retain, and where they are
//! hosted (Feed-Generator-as-a-Service platforms vs self-hosting).

use crate::filter::FeedPipeline;
use bsky_atproto::record::{FeedGeneratorRecord, PostRecord};
use bsky_atproto::{AtUri, Datetime, Did, Nsid};

/// How a generator selects posts.
#[derive(Debug, Clone)]
pub enum CurationMode {
    /// A declarative filter pipeline (what FaaS platforms build).
    Pipeline(FeedPipeline),
    /// A personalised feed (e.g. "the-algorithm", "whats-hot"): output depends
    /// on the requesting viewer and is empty for unknown/empty accounts —
    /// which is why the paper's crawler sees no posts from them (§7.1).
    Personalized,
    /// Manually curated by the creator (posts are added explicitly).
    Manual,
}

/// How much history the generator retains (§3: "different policies regarding
/// their retention of historical posts").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetentionPolicy {
    /// Keep everything.
    All,
    /// Keep only posts newer than this many days.
    Days(u32),
    /// Keep only the most recent N posts.
    Count(usize),
}

/// A curated entry in a feed.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedEntry {
    /// The curated post.
    pub uri: AtUri,
    /// The post's self-reported creation time.
    pub post_created_at: Datetime,
    /// When the generator curated it.
    pub curated_at: Datetime,
}

/// A Feed Generator instance.
#[derive(Debug, Clone)]
pub struct FeedGenerator {
    uri: AtUri,
    creator: Did,
    record: FeedGeneratorRecord,
    mode: CurationMode,
    retention: RetentionPolicy,
    entries: Vec<FeedEntry>,
    like_count: u64,
    requests_served: u64,
}

impl FeedGenerator {
    /// Create a generator.
    pub fn new(
        creator: Did,
        rkey: impl Into<String>,
        record: FeedGeneratorRecord,
        mode: CurationMode,
        retention: RetentionPolicy,
    ) -> FeedGenerator {
        let uri = AtUri::record(
            creator.clone(),
            Nsid::parse(bsky_atproto::nsid::known::FEED_GENERATOR).expect("valid NSID"),
            rkey,
        );
        FeedGenerator {
            uri,
            creator,
            record,
            mode,
            retention,
            entries: Vec::new(),
            like_count: 0,
            requests_served: 0,
        }
    }

    /// The generator's `at://` URI (its identity in likes and subscriptions).
    pub fn uri(&self) -> &AtUri {
        &self.uri
    }

    /// The creator account.
    pub fn creator(&self) -> &Did {
        &self.creator
    }

    /// The declaration record (display name, description, service DID).
    pub fn record(&self) -> &FeedGeneratorRecord {
        &self.record
    }

    /// The hosting service DID.
    pub fn service_did(&self) -> &Did {
        &self.record.service_did
    }

    /// The curation mode.
    pub fn mode(&self) -> &CurationMode {
        &self.mode
    }

    /// The retention policy.
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// Whether this generator produces viewer-dependent output.
    pub fn is_personalized(&self) -> bool {
        matches!(self.mode, CurationMode::Personalized)
    }

    /// Observe a post from the firehose; pipeline generators curate it if it
    /// matches.
    pub fn observe_post(&mut self, uri: &AtUri, author: &Did, post: &PostRecord, now: Datetime) {
        let curate = match &self.mode {
            CurationMode::Pipeline(pipeline) => pipeline.curates(author, post),
            CurationMode::Personalized | CurationMode::Manual => false,
        };
        if curate {
            self.push_entry(FeedEntry {
                uri: uri.clone(),
                post_created_at: post.created_at,
                curated_at: now,
            });
        }
    }

    /// Manually add a post (manual curation, or personalised feeds serving a
    /// concrete viewer).
    pub fn curate_manually(&mut self, uri: AtUri, post_created_at: Datetime, now: Datetime) {
        self.push_entry(FeedEntry {
            uri,
            post_created_at,
            curated_at: now,
        });
    }

    fn push_entry(&mut self, entry: FeedEntry) {
        // Entries are kept sorted by the canonical curation order
        // `(curated_at, uri)` — structural `AtUri` ordering, allocation-free
        // and used identically by the study pipeline's feed merge. This is
        // a *total* order, so "keep the most recent N" means the same thing
        // no matter how the underlying post stream was partitioned: a
        // generator that saw only a subset of the network retains exactly
        // its subset of what a generator that saw everything would retain,
        // which is what makes sharded curation merge back into the
        // single-instance feed exactly.
        let idx = self
            .entries
            .partition_point(|e| (e.curated_at, &e.uri) <= (entry.curated_at, &entry.uri));
        self.entries.insert(idx, entry);
        if let RetentionPolicy::Count(max) = self.retention {
            if self.entries.len() > max {
                let excess = self.entries.len() - max;
                self.entries.drain(0..excess);
            }
        }
    }

    /// Apply time-based retention relative to `now`.
    pub fn enforce_retention(&mut self, now: Datetime) {
        if let RetentionPolicy::Days(days) = self.retention {
            let cutoff = now.timestamp() - days as i64 * 86_400;
            self.entries.retain(|e| e.curated_at.timestamp() >= cutoff);
        }
    }

    /// `getFeedSkeleton`: the most recent `limit` entries, newest first
    /// (ties broken by URI so the order is total and observer-independent).
    /// Personalised feeds return nothing for an anonymous / empty viewer.
    pub fn get_feed(&mut self, limit: usize, viewer: Option<&Did>) -> Vec<FeedEntry> {
        self.requests_served += 1;
        if self.is_personalized() && viewer.is_none() {
            return Vec::new();
        }
        let mut out: Vec<FeedEntry> = self.entries.clone();
        out.sort_by(|a, b| {
            b.post_created_at
                .cmp(&a.post_created_at)
                .then_with(|| a.uri.cmp(&b.uri))
        });
        out.truncate(limit);
        out
    }

    /// All curated entries (oldest first), regardless of viewer.
    pub fn entries(&self) -> &[FeedEntry] {
        &self.entries
    }

    /// Number of curated posts currently retained.
    pub fn post_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the generator has ever curated anything.
    pub fn has_curated(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Record a like on the generator.
    pub fn add_like(&mut self) {
        self.like_count += 1;
    }

    /// Number of likes received (the paper's popularity proxy, §7.1).
    pub fn like_count(&self) -> u64 {
        self.like_count
    }

    /// Number of `getFeed` requests served.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{FeedFilter, FeedInput};
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::Record;

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 20, 10, 0, 0).unwrap()
    }

    fn creator() -> Did {
        Did::plc_from_seed(b"feed-creator")
    }

    fn record(name: &str) -> FeedGeneratorRecord {
        FeedGeneratorRecord {
            service_did: Did::web("skyfeed.example").unwrap(),
            display_name: name.into(),
            description: format!("{name} feed"),
            created_at: Datetime::from_ymd(2023, 6, 1).unwrap(),
        }
    }

    fn post_uri(n: u32) -> AtUri {
        AtUri::record(
            Did::plc_from_seed(b"author"),
            Nsid::parse(known::POST).unwrap(),
            format!("rkey{n:09}"),
        )
    }

    fn hebrew_feed() -> FeedGenerator {
        FeedGenerator::new(
            creator(),
            "hebrew-feed",
            record("hebrew-feed"),
            CurationMode::Pipeline(FeedPipeline {
                inputs: vec![FeedInput::WholeNetwork],
                filters: vec![FeedFilter::Language(vec!["he".into()])],
            }),
            RetentionPolicy::All,
        )
    }

    #[test]
    fn pipeline_generator_curates_matching_posts() {
        let mut feed = hebrew_feed();
        let author = Did::plc_from_seed(b"author");
        feed.observe_post(
            &post_uri(1),
            &author,
            &PostRecord::simple("שלום", "he", now()),
            now(),
        );
        feed.observe_post(
            &post_uri(2),
            &author,
            &PostRecord::simple("hello", "en", now()),
            now(),
        );
        assert_eq!(feed.post_count(), 1);
        assert!(feed.has_curated());
        let skeleton = feed.get_feed(10, None);
        assert_eq!(skeleton.len(), 1);
        assert_eq!(skeleton[0].uri, post_uri(1));
        assert_eq!(feed.requests_served(), 1);
        assert_eq!(
            feed.uri().collection().unwrap().as_str(),
            known::FEED_GENERATOR
        );
        // The declaration record roundtrips through the repo layer.
        let rec = Record::FeedGenerator(feed.record().clone());
        assert_eq!(Record::from_cbor(&rec.to_cbor()).unwrap(), rec);
    }

    #[test]
    fn personalized_feeds_return_nothing_to_anonymous_crawlers() {
        let mut feed = FeedGenerator::new(
            creator(),
            "the-algorithm",
            record("the-algorithm"),
            CurationMode::Personalized,
            RetentionPolicy::All,
        );
        assert!(feed.is_personalized());
        feed.curate_manually(post_uri(1), now(), now());
        assert!(
            feed.get_feed(10, None).is_empty(),
            "anonymous viewer sees nothing"
        );
        let viewer = Did::plc_from_seed(b"real-user");
        assert_eq!(feed.get_feed(10, Some(&viewer)).len(), 1);
    }

    #[test]
    fn count_retention_keeps_most_recent() {
        let mut feed = FeedGenerator::new(
            creator(),
            "last-100",
            record("last-100"),
            CurationMode::Manual,
            RetentionPolicy::Count(100),
        );
        for i in 0..250 {
            feed.curate_manually(post_uri(i), now().plus_seconds(i as i64), now());
        }
        assert_eq!(feed.post_count(), 100);
        assert_eq!(feed.entries()[0].uri, post_uri(150));
    }

    #[test]
    fn day_retention_drops_old_entries() {
        let mut feed = FeedGenerator::new(
            creator(),
            "last-week",
            record("last-week"),
            CurationMode::Manual,
            RetentionPolicy::Days(7),
        );
        for day in 0..20 {
            feed.curate_manually(
                post_uri(day),
                now().plus_days(day as i64),
                now().plus_days(day as i64),
            );
        }
        let end = now().plus_days(20);
        feed.enforce_retention(end);
        assert!(
            feed.post_count() <= 8,
            "only ~a week retained, got {}",
            feed.post_count()
        );
        assert!(feed
            .entries()
            .iter()
            .all(|e| end.timestamp() - e.curated_at.timestamp() <= 7 * 86_400));
    }

    #[test]
    fn skeleton_is_newest_first_and_limited() {
        let mut feed = hebrew_feed();
        let author = Did::plc_from_seed(b"author");
        for i in 0..30 {
            feed.observe_post(
                &post_uri(i),
                &author,
                &PostRecord::simple("שלום", "he", now().plus_seconds(i as i64 * 60)),
                now().plus_seconds(i as i64 * 60),
            );
        }
        let skeleton = feed.get_feed(10, None);
        assert_eq!(skeleton.len(), 10);
        assert!(skeleton
            .windows(2)
            .all(|w| w[0].post_created_at >= w[1].post_created_at));
        assert_eq!(skeleton[0].uri, post_uri(29));
    }

    #[test]
    fn likes_accumulate() {
        let mut feed = hebrew_feed();
        for _ in 0..5 {
            feed.add_like();
        }
        assert_eq!(feed.like_count(), 5);
    }

    #[test]
    fn posts_with_prelaunch_timestamps_are_preserved() {
        // §7.1: 2,202 feed posts carry timestamps predating Bluesky's launch
        // (1185, 1776, ...). The generator must not reject them — they are an
        // upstream data quirk the analysis detects.
        let mut feed = FeedGenerator::new(
            creator(),
            "old-posts",
            record("old-posts"),
            CurationMode::Manual,
            RetentionPolicy::All,
        );
        let medieval = Datetime::from_ymd(1185, 6, 1).unwrap();
        feed.curate_manually(post_uri(1), medieval, now());
        assert_eq!(feed.get_feed(10, None)[0].post_created_at, medieval);
    }
}
