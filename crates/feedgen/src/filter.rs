//! Feed inputs and filters.
//!
//! Feed-Generator-as-a-Service platforms let creators compose a feed from
//! *inputs* (the whole network, single users, lists, tags, other feeds, ...)
//! and *filters* (labels, languages, media counts, regular expressions, ...)
//! — exactly the feature matrix of Table 5. A [`FeedPipeline`] is the
//! declarative description of such a feed; evaluating it against an observed
//! post decides whether the post is curated.

use crate::regex::Regex;
use bsky_atproto::record::{MediaKind, PostRecord};
use bsky_atproto::Did;

/// What a feed draws candidate posts from (Table 5, "Inputs").
#[derive(Debug, Clone, PartialEq)]
pub enum FeedInput {
    /// Every post on the network (via the firehose).
    WholeNetwork,
    /// Posts by a single author.
    SingleUser(Did),
    /// Posts by any author on a list.
    UserList(Vec<Did>),
    /// Posts carrying one of these hashtags.
    Tags(Vec<String>),
    /// Posts in one of these languages (some platforms expose language as an
    /// input rather than a filter).
    Languages(Vec<String>),
}

impl FeedInput {
    /// Whether a post by `author` qualifies as a candidate.
    pub fn admits(&self, author: &Did, post: &PostRecord) -> bool {
        match self {
            FeedInput::WholeNetwork => true,
            FeedInput::SingleUser(did) => author == did,
            FeedInput::UserList(dids) => dids.contains(author),
            FeedInput::Tags(tags) => tags
                .iter()
                .any(|t| post.tags.iter().any(|p| p.eq_ignore_ascii_case(t))),
            FeedInput::Languages(langs) => langs
                .iter()
                .any(|l| post.langs.iter().any(|p| p.eq_ignore_ascii_case(l))),
        }
    }
}

/// A predicate applied to candidate posts (Table 5, "Filters").
#[derive(Debug, Clone)]
pub enum FeedFilter {
    /// Keep only posts in one of these languages.
    Language(Vec<String>),
    /// Keep only posts whose text matches the regex.
    TextRegex(Regex),
    /// Keep only posts whose image alt texts match the regex.
    AltTextRegex(Regex),
    /// Keep only posts with at least this many images.
    MinImageCount(usize),
    /// Drop posts with any attached media of these kinds.
    ExcludeMediaKinds(Vec<MediaKind>),
    /// Keep only posts with attached media of these kinds.
    RequireMediaKinds(Vec<MediaKind>),
    /// Drop posts by these authors.
    ExcludeAuthors(Vec<Did>),
    /// Drop replies.
    ExcludeReplies,
    /// Keep only posts containing this keyword (case-insensitive). Platforms
    /// without regex support offer this simpler filter.
    Keyword(String),
}

impl FeedFilter {
    /// Whether a post passes this filter.
    pub fn passes(&self, author: &Did, post: &PostRecord) -> bool {
        match self {
            FeedFilter::Language(langs) => langs
                .iter()
                .any(|l| post.langs.iter().any(|p| p.eq_ignore_ascii_case(l))),
            FeedFilter::TextRegex(re) => re.is_match(&post.text),
            FeedFilter::AltTextRegex(re) => match &post.embed {
                Some(bsky_atproto::record::Embed::Images(images)) => images
                    .iter()
                    .filter_map(|i| i.alt.as_deref())
                    .any(|alt| re.is_match(alt)),
                _ => false,
            },
            FeedFilter::MinImageCount(n) => post.media_kinds().len() >= *n,
            FeedFilter::ExcludeMediaKinds(kinds) => {
                !post.media_kinds().iter().any(|k| kinds.contains(k))
            }
            FeedFilter::RequireMediaKinds(kinds) => {
                post.media_kinds().iter().any(|k| kinds.contains(k))
            }
            FeedFilter::ExcludeAuthors(authors) => !authors.contains(author),
            FeedFilter::ExcludeReplies => post.reply_parent.is_none(),
            FeedFilter::Keyword(kw) => post
                .text
                .to_ascii_lowercase()
                .contains(&kw.to_ascii_lowercase()),
        }
    }

    /// Whether this filter requires regex support from the hosting platform.
    pub fn needs_regex(&self) -> bool {
        matches!(self, FeedFilter::TextRegex(_) | FeedFilter::AltTextRegex(_))
    }
}

/// The declarative description of a feed's selection logic.
#[derive(Debug, Clone)]
pub struct FeedPipeline {
    /// Candidate sources; a post qualifies if *any* input admits it.
    pub inputs: Vec<FeedInput>,
    /// Filters; a candidate is curated only if *all* filters pass.
    pub filters: Vec<FeedFilter>,
}

impl FeedPipeline {
    /// A pipeline over the whole network with no filters (curates everything).
    pub fn everything() -> FeedPipeline {
        FeedPipeline {
            inputs: vec![FeedInput::WholeNetwork],
            filters: Vec::new(),
        }
    }

    /// Whether the pipeline curates the given post.
    pub fn curates(&self, author: &Did, post: &PostRecord) -> bool {
        if !self.inputs.iter().any(|i| i.admits(author, post)) {
            return false;
        }
        self.filters.iter().all(|f| f.passes(author, post))
    }

    /// Whether the pipeline uses regex filters (needed for the Table 5
    /// platform-capability checks).
    pub fn needs_regex(&self) -> bool {
        self.filters.iter().any(FeedFilter::needs_regex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::record::{Embed, ImageEmbed};
    use bsky_atproto::Datetime;

    fn now() -> Datetime {
        Datetime::from_ymd(2024, 4, 10).unwrap()
    }

    fn author(n: &str) -> Did {
        Did::plc_from_seed(n.as_bytes())
    }

    fn text_post(text: &str, lang: &str) -> PostRecord {
        PostRecord::simple(text, lang, now())
    }

    fn art_post(alt: &str) -> PostRecord {
        PostRecord {
            text: "new piece!".into(),
            created_at: now(),
            langs: vec!["en".into()],
            reply_parent: None,
            embed: Some(Embed::Images(vec![ImageEmbed {
                alt: Some(alt.into()),
                kind: MediaKind::Artwork,
            }])),
            tags: vec!["art".into()],
        }
    }

    #[test]
    fn inputs_admit_expected_posts() {
        let alice = author("alice");
        let bob = author("bob");
        let post = text_post("hello", "en");
        assert!(FeedInput::WholeNetwork.admits(&alice, &post));
        assert!(FeedInput::SingleUser(alice.clone()).admits(&alice, &post));
        assert!(!FeedInput::SingleUser(alice.clone()).admits(&bob, &post));
        assert!(FeedInput::UserList(vec![alice.clone(), bob.clone()]).admits(&bob, &post));
        assert!(!FeedInput::UserList(vec![alice.clone()]).admits(&bob, &post));
        assert!(FeedInput::Languages(vec!["en".into()]).admits(&alice, &post));
        assert!(!FeedInput::Languages(vec!["ja".into()]).admits(&alice, &post));
        let tagged = art_post("a fox");
        assert!(FeedInput::Tags(vec!["ART".into()]).admits(&alice, &tagged));
        assert!(!FeedInput::Tags(vec!["food".into()]).admits(&alice, &tagged));
    }

    #[test]
    fn filters_pass_and_fail() {
        let alice = author("alice");
        let hebrew = text_post("שלום עולם", "he");
        assert!(FeedFilter::Language(vec!["he".into()]).passes(&alice, &hebrew));
        assert!(!FeedFilter::Language(vec!["en".into()]).passes(&alice, &hebrew));

        let ramen = text_post("best Ramen in Tokyo", "ja");
        assert!(FeedFilter::Keyword("ramen".into()).passes(&alice, &ramen));
        assert!(
            FeedFilter::TextRegex(Regex::new_case_insensitive("ramen|ラーメン").unwrap())
                .passes(&alice, &ramen)
        );
        assert!(!FeedFilter::TextRegex(Regex::new("sushi").unwrap()).passes(&alice, &ramen));

        let art = art_post("a watercolour fox");
        assert!(FeedFilter::MinImageCount(1).passes(&alice, &art));
        assert!(!FeedFilter::MinImageCount(2).passes(&alice, &art));
        assert!(FeedFilter::AltTextRegex(Regex::new("fox").unwrap()).passes(&alice, &art));
        assert!(!FeedFilter::AltTextRegex(Regex::new("fox").unwrap()).passes(&alice, &ramen));
        assert!(FeedFilter::RequireMediaKinds(vec![MediaKind::Artwork]).passes(&alice, &art));
        assert!(!FeedFilter::ExcludeMediaKinds(vec![MediaKind::Artwork]).passes(&alice, &art));
        assert!(FeedFilter::ExcludeMediaKinds(vec![MediaKind::Adult]).passes(&alice, &art));

        assert!(!FeedFilter::ExcludeAuthors(vec![alice.clone()]).passes(&alice, &art));
        assert!(FeedFilter::ExcludeAuthors(vec![author("bob")]).passes(&alice, &art));

        let mut reply = text_post("replying", "en");
        reply.reply_parent = Some(bsky_atproto::AtUri::repo(author("bob")));
        assert!(!FeedFilter::ExcludeReplies.passes(&alice, &reply));
        assert!(FeedFilter::ExcludeReplies.passes(&alice, &ramen));
    }

    #[test]
    fn pipeline_combines_inputs_and_filters() {
        let alice = author("alice");
        let pipeline = FeedPipeline {
            inputs: vec![FeedInput::Tags(vec!["art".into()])],
            filters: vec![
                FeedFilter::RequireMediaKinds(vec![MediaKind::Artwork]),
                FeedFilter::ExcludeReplies,
            ],
        };
        assert!(pipeline.curates(&alice, &art_post("fox")));
        assert!(!pipeline.curates(&alice, &text_post("no tag", "en")));
        assert!(!pipeline.needs_regex());

        let regex_pipeline = FeedPipeline {
            inputs: vec![FeedInput::WholeNetwork],
            filters: vec![FeedFilter::TextRegex(Regex::new("ramen").unwrap())],
        };
        assert!(regex_pipeline.needs_regex());
        assert!(regex_pipeline.curates(&alice, &text_post("ramen time", "ja")));
        assert!(FeedPipeline::everything().curates(&alice, &text_post("anything", "en")));
    }
}
