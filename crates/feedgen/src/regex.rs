//! A small regular-expression engine.
//!
//! Skyfeed is the only Feed-Generator-as-a-Service platform offering regex
//! filters over post text, alt text and links (Table 5) — one of the features
//! the paper credits for its 85.86 % market share. This module implements the
//! subset those feed filters use: literals, `.`, character classes `[...]`
//! (with ranges and negation), the quantifiers `*`, `+`, `?`, alternation
//! `|`, grouping `(...)`, and the anchors `^` / `$`. Matching is unanchored
//! by default (`find` semantics) and case-insensitive matching is available
//! as a compile option.

use std::fmt;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    node: Node,
    case_insensitive: bool,
}

/// Errors raised while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regex: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Empty,
    Literal(char),
    AnyChar,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    StartAnchor,
    EndAnchor,
    Concat(Vec<Node>),
    Alternate(Vec<Node>),
    Repeat {
        node: Box<Node>,
        min: u32,
        max: Option<u32>,
    },
}

#[derive(Debug, Clone, PartialEq)]
enum ClassItem {
    Char(char),
    Range(char, char),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            chars: pattern.chars().peekable(),
        }
    }

    fn parse_alternation(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alternate(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Node, RegexError> {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Node::Empty,
            1 => parts.pop().unwrap(),
            _ => Node::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        let node = match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    max: None,
                }
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat {
                    node: Box::new(atom),
                    min: 1,
                    max: None,
                }
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    max: Some(1),
                }
            }
            _ => atom,
        };
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.chars.next() {
            None => Err(RegexError("unexpected end of pattern".into())),
            Some('(') => {
                let inner = self.parse_alternation()?;
                if self.chars.next() != Some(')') {
                    return Err(RegexError("unclosed group".into()));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::AnyChar),
            Some('^') => Ok(Node::StartAnchor),
            Some('$') => Ok(Node::EndAnchor),
            Some('*') | Some('+') | Some('?') => {
                Err(RegexError("quantifier with nothing to repeat".into()))
            }
            Some(')') => Err(RegexError("unmatched ')'".into())),
            Some('\\') => match self.chars.next() {
                Some('d') => Ok(Node::Class {
                    negated: false,
                    items: vec![ClassItem::Range('0', '9')],
                }),
                Some('w') => Ok(Node::Class {
                    negated: false,
                    items: vec![
                        ClassItem::Range('a', 'z'),
                        ClassItem::Range('A', 'Z'),
                        ClassItem::Range('0', '9'),
                        ClassItem::Char('_'),
                    ],
                }),
                Some('s') => Ok(Node::Class {
                    negated: false,
                    items: vec![
                        ClassItem::Char(' '),
                        ClassItem::Char('\t'),
                        ClassItem::Char('\n'),
                        ClassItem::Char('\r'),
                    ],
                }),
                Some(c) => Ok(Node::Literal(c)),
                None => Err(RegexError("trailing backslash".into())),
            },
            Some(c) => Ok(Node::Literal(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let mut negated = false;
        if self.chars.peek() == Some(&'^') {
            negated = true;
            self.chars.next();
        }
        let mut items = Vec::new();
        loop {
            match self.chars.next() {
                None => return Err(RegexError("unclosed character class".into())),
                Some(']') if !items.is_empty() || negated => break,
                Some(']') => break, // empty class `[]` matches nothing
                Some('\\') => match self.chars.next() {
                    Some(c) => items.push(ClassItem::Char(c)),
                    None => return Err(RegexError("trailing backslash in class".into())),
                },
                Some(c) => {
                    if self.chars.peek() == Some(&'-') {
                        // Peek ahead: a range only if the next char is not ']'.
                        let mut clone = self.chars.clone();
                        clone.next();
                        match clone.peek() {
                            Some(&end) if end != ']' => {
                                self.chars.next(); // consume '-'
                                self.chars.next(); // consume end
                                if end < c {
                                    return Err(RegexError(format!("invalid range {c}-{end}")));
                                }
                                items.push(ClassItem::Range(c, end));
                                continue;
                            }
                            _ => {}
                        }
                    }
                    items.push(ClassItem::Char(c));
                }
            }
        }
        Ok(Node::Class { negated, items })
    }
}

impl Regex {
    /// Compile a case-sensitive pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        Regex::compile(pattern, false)
    }

    /// Compile a case-insensitive pattern.
    pub fn new_case_insensitive(pattern: &str) -> Result<Regex, RegexError> {
        Regex::compile(pattern, true)
    }

    fn compile(pattern: &str, case_insensitive: bool) -> Result<Regex, RegexError> {
        let mut parser = Parser::new(pattern);
        let node = parser.parse_alternation()?;
        if parser.chars.next().is_some() {
            return Err(RegexError("unmatched ')'".into()));
        }
        Ok(Regex {
            pattern: pattern.to_string(),
            node,
            case_insensitive,
        })
    }

    /// The original pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        let haystack: Vec<char> = if self.case_insensitive {
            text.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        let node = if self.case_insensitive {
            lowercase_node(&self.node)
        } else {
            self.node.clone()
        };
        for start in 0..=haystack.len() {
            if match_here(&node, &haystack, start, start == 0).is_some() {
                return true;
            }
        }
        false
    }
}

fn lowercase_node(node: &Node) -> Node {
    match node {
        Node::Literal(c) => Node::Literal(c.to_lowercase().next().unwrap_or(*c)),
        Node::Class { negated, items } => Node::Class {
            negated: *negated,
            items: items
                .iter()
                .map(|i| match i {
                    ClassItem::Char(c) => ClassItem::Char(c.to_lowercase().next().unwrap_or(*c)),
                    ClassItem::Range(a, b) => ClassItem::Range(
                        a.to_lowercase().next().unwrap_or(*a),
                        b.to_lowercase().next().unwrap_or(*b),
                    ),
                })
                .collect(),
        },
        Node::Concat(parts) => Node::Concat(parts.iter().map(lowercase_node).collect()),
        Node::Alternate(parts) => Node::Alternate(parts.iter().map(lowercase_node).collect()),
        Node::Repeat { node, min, max } => Node::Repeat {
            node: Box::new(lowercase_node(node)),
            min: *min,
            max: *max,
        },
        other => other.clone(),
    }
}

/// Attempt to match `node` starting at `pos`; returns the end position on
/// success. `at_start` reports whether `pos` is the logical start of the
/// haystack (for `^`).
fn match_here(node: &Node, text: &[char], pos: usize, at_start: bool) -> Option<usize> {
    match node {
        Node::Empty => Some(pos),
        Node::Literal(c) => {
            if text.get(pos) == Some(c) {
                Some(pos + 1)
            } else {
                None
            }
        }
        Node::AnyChar => {
            if pos < text.len() {
                Some(pos + 1)
            } else {
                None
            }
        }
        Node::Class { negated, items } => {
            let c = *text.get(pos)?;
            let mut matched = false;
            for item in items {
                match item {
                    ClassItem::Char(x) if *x == c => matched = true,
                    ClassItem::Range(a, b) if c >= *a && c <= *b => matched = true,
                    _ => {}
                }
            }
            if matched != *negated {
                Some(pos + 1)
            } else {
                None
            }
        }
        Node::StartAnchor => {
            if pos == 0 {
                Some(pos)
            } else {
                None
            }
        }
        Node::EndAnchor => {
            if pos == text.len() {
                Some(pos)
            } else {
                None
            }
        }
        Node::Alternate(branches) => branches
            .iter()
            .find_map(|b| match_here(b, text, pos, at_start)),
        Node::Concat(parts) => match_sequence(parts, text, pos, at_start),
        Node::Repeat { node, min, max } => match_repeat(node, *min, *max, &[], text, pos, at_start),
    }
}

/// Match a sequence of nodes, with backtracking for repeats.
fn match_sequence(parts: &[Node], text: &[char], pos: usize, at_start: bool) -> Option<usize> {
    match parts.split_first() {
        None => Some(pos),
        Some((Node::Repeat { node, min, max }, rest)) => {
            match_repeat(node, *min, *max, rest, text, pos, at_start)
        }
        Some((first, rest)) => {
            let next = match_here(first, text, pos, at_start)?;
            match_sequence(rest, text, next, at_start && next == pos)
        }
    }
}

/// Greedy repeat with backtracking into the remainder of the sequence.
fn match_repeat(
    node: &Node,
    min: u32,
    max: Option<u32>,
    rest: &[Node],
    text: &[char],
    pos: usize,
    at_start: bool,
) -> Option<usize> {
    // Collect every reachable end position (0, 1, 2, ... repetitions).
    let mut ends = vec![pos];
    let mut current = pos;
    loop {
        if let Some(limit) = max {
            if ends.len() as u32 > limit {
                break;
            }
        }
        match match_here(node, text, current, at_start && current == pos) {
            Some(next) if next > current => {
                ends.push(next);
                current = next;
            }
            // Zero-width or failed repetition — stop expanding.
            _ => break,
        }
    }
    // Try the longest expansions first (greedy), respecting min/max.
    for (count, &end) in ends.iter().enumerate().rev() {
        if (count as u32) < min {
            break;
        }
        if let Some(limit) = max {
            if count as u32 > limit {
                continue;
            }
        }
        if let Some(final_end) = match_sequence(rest, text, end, at_start && end == pos) {
            return Some(final_end);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(pattern: &str, text: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literals_and_find_semantics() {
        assert!(matches("ramen", "best ramen in town"));
        assert!(!matches("ramen", "best sushi in town"));
        assert!(matches("", "anything"));
        assert!(matches("a", "a"));
        assert!(!matches("a", ""));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(matches("r.men", "ramen"));
        assert!(matches("ra*men", "rmen"));
        assert!(matches("ra*men", "raaaamen"));
        assert!(matches("ra+men", "ramen"));
        assert!(!matches("ra+men", "rmen"));
        assert!(matches("colou?r", "color"));
        assert!(matches("colou?r", "colour"));
        assert!(matches("a.*z", "a lot of text then z"));
        assert!(!matches("a.+z", "az"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(matches("cat|dog", "hotdog stand"));
        assert!(matches("cat|dog", "catalogue"));
        assert!(!matches("cat|dog", "bird"));
        assert!(matches("(fur|scaly) art", "new fur art today"));
        assert!(matches("(ab)+c", "ababc"));
        assert!(!matches("(ab)+c", "ac"));
        assert!(matches("gr(e|a)y", "gray"));
        assert!(matches("gr(e|a)y", "grey"));
    }

    #[test]
    fn character_classes() {
        assert!(matches("[abc]at", "bat"));
        assert!(!matches("[abc]at", "rat"));
        assert!(matches("[a-z]+", "word"));
        assert!(matches("[0-9]", "5"));
        assert!(matches("[^0-9]", "x"));
        assert!(!matches("^[^0-9]+$", "123"));
        assert!(matches(r"\d\d\d", "abc 123"));
        assert!(matches(r"\w+", "word_123"));
        assert!(matches(r"\s", "a b"));
        assert!(matches(r"ko-fi\.com", "support me on ko-fi.com please"));
        assert!(!matches(r"ko-fi\.com", "kozfizcom"));
    }

    #[test]
    fn anchors() {
        assert!(matches("^ramen", "ramen shop"));
        assert!(!matches("^ramen", "best ramen"));
        assert!(matches("shop$", "ramen shop"));
        assert!(!matches("shop$", "shopping"));
        assert!(matches("^exact$", "exact"));
        assert!(!matches("^exact$", "not exact"));
        assert!(matches("^$", ""));
        assert!(!matches("^$", "x"));
    }

    #[test]
    fn case_insensitive_mode() {
        let re = Regex::new_case_insensitive("RAMEN|ラーメン").unwrap();
        assert!(re.is_match("Best Ramen"));
        assert!(re.is_match("ラーメン食べたい"));
        assert!(!re.is_match("sushi"));
        let sensitive = Regex::new("RAMEN").unwrap();
        assert!(!sensitive.is_match("ramen"));
    }

    #[test]
    fn unicode_text() {
        assert!(matches("ラーメン", "今日はラーメンを食べた"));
        assert!(matches("caf.", "café"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("unopened)").is_err());
        assert!(Regex::new("[unclosed").is_err());
        assert!(Regex::new("*leading").is_err());
        assert!(Regex::new("trailing\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert_eq!(
            Regex::new("(a").unwrap_err().to_string(),
            "invalid regex: unclosed group"
        );
    }

    #[test]
    fn pattern_accessor() {
        let re = Regex::new("a+b").unwrap();
        assert_eq!(re.pattern(), "a+b");
    }

    #[test]
    fn pathological_backtracking_is_bounded() {
        // (a+)+b against a long run of 'a' with no 'b' — our repeat collapses
        // equal-length expansions so this completes quickly.
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(64);
        assert!(!re.is_match(&text));
        assert!(re.is_match(&format!("{}b", "a".repeat(64))));
    }
}
