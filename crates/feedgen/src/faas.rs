//! Feed-Generator-as-a-Service platforms.
//!
//! §7.2 and Table 5 compare the five platforms hosting the vast majority of
//! Feed Generators: Skyfeed (85.86 % of feeds), Bluefeed, Blueskyfeeds,
//! Goodfeeds and Blueskyfeedcreator. Each exposes a different subset of
//! inputs and filters; Skyfeed is the only one with regex support. This
//! module models the platforms, their feature matrices, and whether a given
//! [`FeedPipeline`] can be hosted on a given platform.

use crate::filter::{FeedFilter, FeedInput, FeedPipeline};

/// The input features a platform supports (Table 5, upper half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InputFeatures {
    /// Whole-network input.
    pub whole_network: bool,
    /// Hashtag input.
    pub tags: bool,
    /// Single-user input.
    pub single_user: bool,
    /// User-list input.
    pub list: bool,
    /// Another feed as input.
    pub feed: bool,
    /// A single post as input.
    pub single_post: bool,
    /// Labels as input.
    pub labels: bool,
}

/// The filter features a platform supports (Table 5, lower half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterFeatures {
    /// Label filters.
    pub labels: bool,
    /// Image-count filters.
    pub image_count: bool,
    /// Link-count filters.
    pub link_count: bool,
    /// Repost-count filters.
    pub repost_count: bool,
    /// Duplicate suppression.
    pub duplicate: bool,
    /// List-of-users filters.
    pub list_of_users: bool,
    /// Language filters.
    pub language: bool,
    /// Regex over post text.
    pub regex_text: bool,
    /// Regex over image alt text.
    pub regex_alt: bool,
    /// Regex over links.
    pub regex_link: bool,
}

/// Pricing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pricing {
    /// Free to use.
    Free,
    /// Free tier plus paid options.
    FreeAndPaid,
}

/// A Feed-Generator-as-a-Service platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaasPlatform {
    /// Platform name as used in Table 5 / Figure 12.
    pub name: String,
    /// Hostname of the service (feeds hosted here share this service DID).
    pub hostname: String,
    /// Supported inputs.
    pub inputs: InputFeatures,
    /// Supported filters.
    pub filters: FilterFeatures,
    /// Pricing model.
    pub pricing: Pricing,
}

impl FaasPlatform {
    /// Whether a pipeline can be built on this platform.
    pub fn supports(&self, pipeline: &FeedPipeline) -> bool {
        for input in &pipeline.inputs {
            let ok = match input {
                FeedInput::WholeNetwork => self.inputs.whole_network,
                FeedInput::SingleUser(_) => self.inputs.single_user,
                FeedInput::UserList(_) => self.inputs.list,
                FeedInput::Tags(_) => self.inputs.tags,
                FeedInput::Languages(_) => self.filters.language || self.inputs.whole_network,
            };
            if !ok {
                return false;
            }
        }
        for filter in &pipeline.filters {
            let ok = match filter {
                FeedFilter::Language(_) => self.filters.language,
                FeedFilter::TextRegex(_) => self.filters.regex_text,
                FeedFilter::AltTextRegex(_) => self.filters.regex_alt,
                FeedFilter::MinImageCount(_) => self.filters.image_count,
                FeedFilter::ExcludeMediaKinds(_) | FeedFilter::RequireMediaKinds(_) => {
                    self.filters.labels || self.filters.image_count
                }
                FeedFilter::ExcludeAuthors(_) => self.filters.list_of_users,
                FeedFilter::ExcludeReplies => true,
                FeedFilter::Keyword(_) => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Count of supported features (a rough proxy for Table 5's
    /// comprehensiveness comparison).
    pub fn feature_count(&self) -> usize {
        let i = &self.inputs;
        let f = &self.filters;
        [
            i.whole_network,
            i.tags,
            i.single_user,
            i.list,
            i.feed,
            i.single_post,
            i.labels,
            f.labels,
            f.image_count,
            f.link_count,
            f.repost_count,
            f.duplicate,
            f.list_of_users,
            f.language,
            f.regex_text,
            f.regex_alt,
            f.regex_link,
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }
}

/// The five platforms of Table 5, with their observed feature matrices.
pub fn default_platforms() -> Vec<FaasPlatform> {
    vec![
        FaasPlatform {
            name: "Skyfeed".into(),
            hostname: "skyfeed.app".into(),
            inputs: InputFeatures {
                whole_network: true,
                tags: true,
                single_user: true,
                list: true,
                feed: true,
                single_post: true,
                labels: true,
                // Token/segment inputs folded into the above.
            },
            filters: FilterFeatures {
                labels: true,
                image_count: true,
                link_count: true,
                repost_count: true,
                duplicate: true,
                list_of_users: true,
                language: true,
                regex_text: true,
                regex_alt: true,
                regex_link: true,
            },
            pricing: Pricing::Free,
        },
        FaasPlatform {
            name: "Bluefeed".into(),
            hostname: "bluefeed.app".into(),
            inputs: InputFeatures {
                whole_network: true,
                tags: true,
                single_user: true,
                list: true,
                feed: true,
                single_post: true,
                labels: true,
            },
            filters: FilterFeatures {
                labels: true,
                list_of_users: true,
                language: true,
                duplicate: false,
                ..Default::default()
            },
            pricing: Pricing::Free,
        },
        FaasPlatform {
            name: "Blueskyfeeds".into(),
            hostname: "blueskyfeeds.com".into(),
            inputs: InputFeatures {
                whole_network: true,
                tags: true,
                single_user: true,
                list: true,
                ..Default::default()
            },
            filters: FilterFeatures {
                labels: true,
                list_of_users: true,
                language: true,
                ..Default::default()
            },
            pricing: Pricing::Free,
        },
        FaasPlatform {
            name: "Goodfeeds".into(),
            hostname: "goodfeeds.co".into(),
            inputs: InputFeatures {
                whole_network: true,
                tags: true,
                single_user: true,
                list: true,
                single_post: true,
                ..Default::default()
            },
            filters: FilterFeatures {
                labels: true,
                ..Default::default()
            },
            pricing: Pricing::Free,
        },
        FaasPlatform {
            name: "Blueskyfeedcreator".into(),
            hostname: "blueskyfeedcreator.com".into(),
            inputs: InputFeatures {
                single_user: true,
                single_post: true,
                ..Default::default()
            },
            filters: FilterFeatures {
                image_count: true,
                link_count: true,
                repost_count: true,
                list_of_users: true,
                language: true,
                duplicate: true,
                ..Default::default()
            },
            pricing: Pricing::FreeAndPaid,
        },
    ]
}

/// The share of feeds each platform hosts in the live network (Figure 12 /
/// Table 5's "Number of Feeds" row, normalised). Used by the workload
/// generator to assign synthetic feeds to platforms. The remainder is
/// self-hosted.
pub fn observed_feed_shares() -> Vec<(&'static str, f64)> {
    vec![
        ("Skyfeed", 0.8586),
        ("Bluefeed", 0.0558),
        ("Blueskyfeeds", 0.0436),
        ("Goodfeeds", 0.0225),
        ("Blueskyfeedcreator", 0.0038),
        ("self-hosted", 0.0157),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use bsky_atproto::Did;

    #[test]
    fn five_platforms_with_skyfeed_most_capable() {
        let platforms = default_platforms();
        assert_eq!(platforms.len(), 5);
        let skyfeed = &platforms[0];
        assert_eq!(skyfeed.name, "Skyfeed");
        for other in &platforms[1..] {
            assert!(
                skyfeed.feature_count() > other.feature_count(),
                "Skyfeed must dominate {}",
                other.name
            );
        }
        // Only Skyfeed supports regex (Table 5).
        let regex_capable: Vec<&str> = platforms
            .iter()
            .filter(|p| p.filters.regex_text)
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(regex_capable, vec!["Skyfeed"]);
        // Only Blueskyfeedcreator has paid options.
        let paid: Vec<&str> = platforms
            .iter()
            .filter(|p| p.pricing == Pricing::FreeAndPaid)
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(paid, vec!["Blueskyfeedcreator"]);
    }

    #[test]
    fn pipeline_support_checks() {
        let platforms = default_platforms();
        let regex_pipeline = FeedPipeline {
            inputs: vec![FeedInput::WholeNetwork],
            filters: vec![FeedFilter::TextRegex(Regex::new("ramen").unwrap())],
        };
        let simple_pipeline = FeedPipeline {
            inputs: vec![FeedInput::Tags(vec!["art".into()])],
            filters: vec![FeedFilter::Language(vec!["en".into()])],
        };
        let supporting_regex = platforms
            .iter()
            .filter(|p| p.supports(&regex_pipeline))
            .count();
        assert_eq!(supporting_regex, 1, "only Skyfeed hosts regex pipelines");
        let supporting_simple = platforms
            .iter()
            .filter(|p| p.supports(&simple_pipeline))
            .count();
        assert!(supporting_simple >= 3);
        // A single-user pipeline is the lowest common denominator (every
        // platform in Table 5 supports single-user inputs).
        let single_user = FeedPipeline {
            inputs: vec![FeedInput::SingleUser(Did::plc_from_seed(b"a"))],
            filters: vec![],
        };
        assert!(platforms.iter().all(|p| p.supports(&single_user)));
    }

    #[test]
    fn feed_shares_sum_to_one() {
        let shares = observed_feed_shares();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        assert_eq!(shares[0].0, "Skyfeed");
        assert!(shares[0].1 > 0.8);
    }
}
