//! A dependency-free micro-benchmark harness for the workspace's
//! `harness = false` bench targets.
//!
//! Each bench target is a plain binary: it builds groups with
//! [`BenchGroup`], times closures with `std::time::Instant`, and prints
//! `name ... median time/iter` lines. `cargo bench` invokes the binary with
//! `--bench`, which selects full measurement; any other invocation — in
//! particular `cargo test`, which runs each `test = true` bench target with
//! no arguments — is a smoke run where every benchmark body executes exactly
//! once, so regressions in the bench code (and its assertions) are caught
//! without paying for full measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Whether this is a smoke run: anything but `cargo bench` (which passes
/// `--bench`), or an explicit `--smoke` flag (the CI runs
/// `cargo bench -- --smoke` in release so the bench *code* — including its
/// assertions — is exercised without paying for full measurement).
pub fn smoke_mode() -> bool {
    let mut has_bench = false;
    let mut has_smoke = false;
    for arg in std::env::args() {
        match arg.as_str() {
            "--bench" => has_bench = true,
            "--smoke" => has_smoke = true,
            _ => {}
        }
    }
    !has_bench || has_smoke
}

/// A named group of benchmarks with a shared sample count.
pub struct BenchGroup {
    name: String,
    samples: u32,
    smoke: bool,
}

impl BenchGroup {
    /// A group with the default of 10 samples per benchmark.
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_string(),
            samples: 10,
            smoke: smoke_mode(),
        }
    }

    /// Override the number of measured samples.
    pub fn sample_size(&mut self, samples: u32) -> &mut BenchGroup {
        self.samples = samples.max(1);
        self
    }

    /// Measure one closure: runs it `samples` times (once in smoke mode) and
    /// prints the median wall-clock duration. The closure's return value is
    /// passed through `std::hint::black_box` so the work is not optimised
    /// away.
    pub fn bench_function<F, R>(&mut self, name: &str, f: F) -> &mut BenchGroup
    where
        F: FnMut() -> R,
    {
        self.measure(name, f);
        self
    }

    /// Like [`BenchGroup::bench_function`], but also returns the median
    /// duration so callers can compute derived figures (speedups,
    /// per-iteration rates, machine-readable exports).
    pub fn measure<F, R>(&mut self, name: &str, mut f: F) -> Duration
    where
        F: FnMut() -> R,
    {
        let runs = if self.smoke { 1 } else { self.samples };
        let mut timings: Vec<Duration> = Vec::with_capacity(runs as usize);
        for _ in 0..runs {
            let start = Instant::now();
            std::hint::black_box(f());
            timings.push(start.elapsed());
        }
        timings.sort();
        let median = timings[timings.len() / 2];
        println!(
            "{}/{name}{}: median {median:?} over {runs} run(s)",
            self.name,
            if self.smoke { " [smoke]" } else { "" },
        );
        median
    }

    /// No-op, for call-site compatibility with criterion-style code.
    pub fn finish(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut group = BenchGroup::new("unit");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counts_calls", || {
            calls += 1;
            calls
        });
        assert!(calls >= 1);
    }
}
