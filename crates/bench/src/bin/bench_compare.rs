//! Compare a fresh `BENCH_streaming.json` against the committed baseline
//! and fail (exit 1) on perf regressions, so the bench trajectory is
//! enforced — not just recorded — across PRs.
//!
//! Usage:
//!   bench-compare <current.json> <baseline.json>
//!
//! Checks (each with a 20 % tolerance):
//!   * `sharded_speedup` must not drop below 80 % of the baseline;
//!   * `serial_ns_per_day` / `sharded4_ns_per_day` must not exceed 120 % of
//!     the baseline.
//!
//! Timing comparisons are skipped gracefully when either side ran on fewer
//! than 4 CPUs — the same hardware gate the streaming bench applies to its
//! own speedup assertion — because single-digit-core container timings are
//! not comparable. Structural fields (the incremental-vs-full snapshot
//! traffic win, the paged-vs-mem resident-block-bytes win, and the MST
//! prefix-compression win) are always checked.

use bsky_study::json::Json;

/// Allowed regression: values may move 20 % in the bad direction.
const TOLERANCE: f64 = 0.20;
/// Timing comparisons need at least this many CPUs on both sides.
const MIN_CPUS: u64 = 4;

/// The outcome of one comparison run.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// All applicable checks passed (with possibly some skipped).
    Pass { skipped: Vec<String> },
    /// At least one regression beyond tolerance.
    Fail { regressions: Vec<String> },
}

fn get_f64(doc: &Json, key: &str) -> Option<f64> {
    doc[key].as_f64()
}

/// Compare `current` against `baseline`, returning the verdict and a log of
/// every check performed.
fn compare(current: &Json, baseline: &Json) -> (Outcome, Vec<String>) {
    let mut log = Vec::new();
    let mut regressions = Vec::new();
    let mut skipped = Vec::new();

    // The incremental snapshot win must hold wherever the bench ran.
    match (
        get_f64(current, "snapshot_bytes_fetched_incremental"),
        get_f64(current, "snapshot_bytes_fetched_full"),
    ) {
        (Some(inc), Some(full)) => {
            log.push(format!(
                "snapshot bytes: incremental {inc:.0} vs full {full:.0}"
            ));
            if inc >= full {
                regressions.push(format!(
                    "incremental snapshots fetched {inc:.0} bytes, not below the full refetch's {full:.0}"
                ));
            }
        }
        _ => skipped.push("snapshot byte fields missing from current export".to_string()),
    }

    // The paged store's resident-bytes win must hold wherever the bench ran.
    match (
        get_f64(current, "resident_block_bytes_paged"),
        get_f64(current, "resident_block_bytes_mem"),
    ) {
        (Some(paged), Some(mem)) => {
            log.push(format!(
                "resident block bytes: paged {paged:.0} vs mem {mem:.0}"
            ));
            if paged >= mem {
                regressions.push(format!(
                    "paged store kept {paged:.0} resident bytes, not below the mem store's {mem:.0}"
                ));
            }
        }
        _ => skipped.push("resident block byte fields missing from current export".to_string()),
    }

    // And so must the MST prefix-compression win.
    match (
        get_f64(current, "mst_structural_bytes"),
        get_f64(current, "mst_structural_bytes_uncompressed"),
    ) {
        (Some(compressed), Some(full)) => {
            log.push(format!(
                "mst structural bytes: {compressed:.0} compressed vs {full:.0} legacy"
            ));
            if compressed >= full {
                regressions.push(format!(
                    "MST prefix compression regressed: {compressed:.0} not below {full:.0}"
                ));
            }
        }
        _ => skipped.push("mst structural byte fields missing from current export".to_string()),
    }

    let cpus_ok = |doc: &Json| doc["parallelism"].as_u64().unwrap_or(0) >= MIN_CPUS;
    if !cpus_ok(current) || !cpus_ok(baseline) {
        skipped.push(format!(
            "timing checks: current ran on {} CPU(s), baseline on {} — both need >= {MIN_CPUS}",
            current["parallelism"].as_u64().unwrap_or(0),
            baseline["parallelism"].as_u64().unwrap_or(0),
        ));
    } else {
        // Speedup: higher is better.
        if let (Some(cur), Some(base)) = (
            get_f64(current, "sharded_speedup"),
            get_f64(baseline, "sharded_speedup"),
        ) {
            let floor = base * (1.0 - TOLERANCE);
            log.push(format!(
                "sharded_speedup: {cur:.2} vs baseline {base:.2} (floor {floor:.2})"
            ));
            if cur < floor {
                regressions.push(format!(
                    "sharded_speedup regressed: {cur:.2} < {floor:.2} (baseline {base:.2} - {}%)",
                    (TOLERANCE * 100.0) as u64
                ));
            }
        }
        // ns/day: lower is better.
        for key in ["serial_ns_per_day", "sharded4_ns_per_day"] {
            if let (Some(cur), Some(base)) = (get_f64(current, key), get_f64(baseline, key)) {
                let ceiling = base * (1.0 + TOLERANCE);
                log.push(format!(
                    "{key}: {cur:.0} vs baseline {base:.0} (ceiling {ceiling:.0})"
                ));
                if cur > ceiling {
                    regressions.push(format!(
                        "{key} regressed: {cur:.0} > {ceiling:.0} (baseline {base:.0} + {}%)",
                        (TOLERANCE * 100.0) as u64
                    ));
                }
            }
        }
    }

    if regressions.is_empty() {
        (Outcome::Pass { skipped }, log)
    } else {
        (Outcome::Fail { regressions }, log)
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("bench-compare: cannot read {path}: {err}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|err| {
        eprintln!("bench-compare: cannot parse {path}: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [current_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: bench-compare <current.json> <baseline.json>");
        std::process::exit(2);
    };
    let current = load(current_path);
    let baseline = load(baseline_path);
    let (outcome, log) = compare(&current, &baseline);
    for line in &log {
        println!("bench-compare: {line}");
    }
    match outcome {
        Outcome::Pass { skipped } => {
            for line in skipped {
                println!("bench-compare: skipped — {line}");
            }
            println!("bench-compare: OK");
        }
        Outcome::Fail { regressions } => {
            for line in regressions {
                eprintln!("bench-compare: REGRESSION — {line}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn export(parallelism: u64, speedup: f64, serial_ns: u64, inc: u64, full: u64) -> Json {
        Json::object()
            .with("bench", "streaming")
            .with("parallelism", parallelism)
            .with("sharded_speedup", speedup)
            .with("serial_ns_per_day", serial_ns)
            .with("sharded4_ns_per_day", serial_ns / 2)
            .with("snapshot_bytes_fetched_incremental", inc)
            .with("snapshot_bytes_fetched_full", full)
    }

    #[test]
    fn equal_exports_pass() {
        let doc = export(8, 3.0, 1_000_000, 700, 1_000);
        let (outcome, log) = compare(&doc, &doc);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
        assert!(!log.is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current = export(8, 2.5, 1_150_000, 800, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
    }

    #[test]
    fn speedup_regression_fails() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current = export(8, 2.0, 1_000_000, 700, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(
            regressions[0].contains("sharded_speedup"),
            "{regressions:?}"
        );
    }

    #[test]
    fn ns_per_day_regression_fails() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current = export(8, 3.0, 1_500_000, 700, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(
            regressions.iter().any(|r| r.contains("serial_ns_per_day")),
            "{regressions:?}"
        );
    }

    #[test]
    fn few_cpus_skip_timing_checks_gracefully() {
        // A 10x slowdown on a 1-CPU container must not fail the build —
        // the same hardware gate the bench's own speedup assertion uses.
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let current = export(1, 0.5, 10_000_000, 700, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Pass { skipped } = outcome else {
            panic!("expected graceful skip");
        };
        assert!(skipped.iter().any(|s| s.contains("timing checks")));
    }

    #[test]
    fn snapshot_traffic_win_is_always_enforced() {
        // Even on 1 CPU, losing the incremental-vs-full byte win fails.
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let current = export(1, 0.9, 1_000_000, 1_200, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        assert!(matches!(outcome, Outcome::Fail { .. }), "{outcome:?}");
    }

    #[test]
    fn resident_bytes_win_is_always_enforced() {
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        // Paged resident below mem: passes (fields present in current only).
        let good = export(1, 0.9, 1_000_000, 700, 1_000)
            .with("resident_block_bytes_mem", 10_000u64)
            .with("resident_block_bytes_paged", 4_000u64);
        let (outcome, log) = compare(&good, &baseline);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
        assert!(log.iter().any(|l| l.contains("resident block bytes")));
        // Paged resident at or above mem: fails even on 1 CPU.
        let bad = export(1, 0.9, 1_000_000, 700, 1_000)
            .with("resident_block_bytes_mem", 10_000u64)
            .with("resident_block_bytes_paged", 10_000u64);
        let (outcome, _) = compare(&bad, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(regressions[0].contains("resident"), "{regressions:?}");
    }

    #[test]
    fn mst_compression_win_is_always_enforced() {
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let bad = export(1, 0.9, 1_000_000, 700, 1_000)
            .with("mst_structural_bytes", 5_000u64)
            .with("mst_structural_bytes_uncompressed", 5_000u64);
        let (outcome, _) = compare(&bad, &baseline);
        assert!(matches!(outcome, Outcome::Fail { .. }), "{outcome:?}");
        // Absent fields skip gracefully (older exports remain comparable).
        let (outcome, _) = compare(&baseline, &baseline);
        let Outcome::Pass { skipped } = outcome else {
            panic!("expected pass");
        };
        assert!(skipped.iter().any(|s| s.contains("mst structural")));
    }
}
