//! Compare a fresh `BENCH_streaming.json` against the committed baseline
//! and fail (exit 1) on perf regressions, so the bench trajectory is
//! enforced — not just recorded — across PRs.
//!
//! Usage:
//!   bench-compare [--require-timing-gates] <current.json> <baseline.json>
//!
//! Checks (each with a 20 % tolerance):
//!   * `serial_ns_per_day` must not exceed 120 % of the baseline — enforced
//!     on every run: a single pinned core measures serial throughput as
//!     faithfully as eight, so this is the one timing the trajectory never
//!     lets drift;
//!   * `sharded_speedup` must not drop below 80 % of the baseline;
//!   * `sharded4_ns_per_day` must not exceed 120 % of the baseline;
//!   * `pipeline_speedup` must not drop below 85 % of the baseline (the
//!     intra-shard pipeline win is gated at 15 %, matching the streaming
//!     bench's own ≥ 1.15× assertion);
//!   * `pipelined4_ns_per_day` must not exceed 115 % of the baseline.
//!
//! The *parallel* comparisons (`sharded_speedup`, `sharded4_ns_per_day`,
//! `pipeline_speedup`, `pipelined4_ns_per_day`)
//! are skipped gracefully when either side ran on fewer than 4 CPUs — the
//! same hardware gate the streaming bench applies to its own speedup
//! assertion — because single-digit-core container parallelism is not
//! comparable. Every skip is announced with a `timing gates skipped:`
//! notice naming the offending parallelism, so a baseline that silently
//! never fires its timing gates is visible in the CI log. Under
//! `--require-timing-gates` a skip is an error (exit 1) instead of a
//! notice: CI's bench job passes the flag, so a committed baseline whose
//! `parallelism` is below 4 can never masquerade as a green timing
//! trajectory. Structural wins (the incremental-vs-full snapshot
//! traffic win, the paged-vs-mem resident-block-bytes win for both the
//! repo/relay stores and the AppView's entity shards, the MST
//! prefix-compression win, the observatory's framing-overhead win, and the
//! federation's sublinear per-DID residency win) are always checked.
//!
//! ## Regenerating the baseline
//!
//! The committed `BENCH_streaming.json` must be produced on a machine with
//! **at least 4 available CPUs** (8+ recommended, otherwise unloaded), or
//! its `parallelism` field permanently disarms every parallel timing gate
//! for the whole trajectory. Regenerate with:
//!
//! ```text
//! cargo bench --bench streaming
//! git add BENCH_streaming.json
//! ```
//!
//! then confirm `bench-compare --require-timing-gates` passes against the
//! fresh export before committing. Regeneration is mandatory in the same
//! PR that adds a metric to [`STRUCTURAL_WINS`] (stale baselines fail).
//!
//! First-run and stale-baseline behaviour is explicit, never a confusing
//! JSON error: a *missing* baseline file fails with instructions to run the
//! bench and commit the export (exit 2 — a setup problem, not a
//! regression), and a baseline that *lacks a metric the current export
//! enforces* fails with a "regenerate the baseline" message (exit 1 — the
//! committed trajectory predates the metric and must be refreshed in the
//! same PR that adds it).

use bsky_study::json::Json;

/// Allowed regression: values may move 20 % in the bad direction.
const TOLERANCE: f64 = 0.20;
/// Tighter gate for the intra-shard pipeline metrics: a 15 % regression of
/// `pipeline_speedup` / `pipelined4_ns_per_day` fails the build, matching
/// the streaming bench's own ≥ 1.15× speedup assertion.
const PIPELINE_TOLERANCE: f64 = 0.15;
/// Timing comparisons need at least this many CPUs on both sides.
const MIN_CPUS: u64 = 4;

/// One always-enforced structural win: `better` must stay strictly below
/// `worse` in the current export.
struct StructuralWin {
    better: &'static str,
    worse: &'static str,
    what: &'static str,
}

/// The structural wins the trajectory enforces on every run, regardless of
/// CPU count. Adding an entry here requires regenerating the committed
/// baseline in the same PR — [`compare`] fails on baselines that lack a
/// key the current export carries.
const STRUCTURAL_WINS: &[StructuralWin] = &[
    StructuralWin {
        better: "snapshot_bytes_fetched_incremental",
        worse: "snapshot_bytes_fetched_full",
        what: "incremental snapshot bytes",
    },
    StructuralWin {
        better: "resident_block_bytes_paged",
        worse: "resident_block_bytes_mem",
        what: "paged resident block bytes",
    },
    StructuralWin {
        better: "appview_resident_bytes_paged",
        worse: "appview_resident_bytes_mem",
        what: "paged appview resident bytes",
    },
    StructuralWin {
        better: "mst_structural_bytes",
        worse: "mst_structural_bytes_uncompressed",
        what: "MST prefix compression bytes",
    },
    // Lower overhead is "better" here in the comparator's sense only: bare
    // framing must always cost strictly fewer bytes than bucket padding,
    // i.e. the mitigation's overhead must remain measurable.
    StructuralWin {
        better: "padding_overhead_none_bytes",
        worse: "padding_overhead_bytes",
        what: "unmitigated framing overhead bytes",
    },
    // Federated scale-out must stay sublinear: a federated paged run at a
    // larger population must hold strictly fewer resident block bytes per
    // DID than the smaller-population run (fixed page overheads amortize;
    // residency is LRU-bounded, not population-bound).
    StructuralWin {
        better: "bytes_per_did_large",
        worse: "bytes_per_did_base",
        what: "federated per-DID residency (sublinear scale-out)",
    },
];

/// The outcome of one comparison run.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// All applicable checks passed (with possibly some skipped).
    /// `timing_gates_skipped` records whether the parallel timing gates
    /// were among the skips — `--require-timing-gates` turns that into a
    /// failure.
    Pass {
        skipped: Vec<String>,
        timing_gates_skipped: bool,
    },
    /// At least one regression beyond tolerance.
    Fail { regressions: Vec<String> },
}

fn get_f64(doc: &Json, key: &str) -> Option<f64> {
    doc[key].as_f64()
}

/// The failure message for a committed baseline that predates a metric the
/// current export enforces.
fn stale_baseline_message(key: &str) -> String {
    format!(
        "baseline lacks {key:?} — the committed BENCH_streaming.json predates this metric; \
         regenerate it (`cargo bench --bench streaming -- --json`) and commit the result"
    )
}

/// The failure message for a baseline file that does not exist at all (the
/// bench trajectory has not been started yet).
fn missing_baseline_message(path: &str) -> String {
    format!(
        "baseline {path} does not exist — no bench trajectory has been committed yet. \
         Run `cargo bench --bench streaming -- --json` and commit BENCH_streaming.json; \
         bench-compare needs that baseline before it can enforce regressions"
    )
}

/// Compare `current` against `baseline`, returning the verdict and a log of
/// every check performed.
fn compare(current: &Json, baseline: &Json) -> (Outcome, Vec<String>) {
    let mut log = Vec::new();
    let mut regressions = Vec::new();
    let mut skipped = Vec::new();

    // Structural wins hold wherever the bench ran; a baseline missing a key
    // the current export carries is itself a failure (stale trajectory).
    for win in STRUCTURAL_WINS {
        match (get_f64(current, win.better), get_f64(current, win.worse)) {
            (Some(better), Some(worse)) => {
                log.push(format!("{}: {better:.0} vs {worse:.0}", win.what));
                if better >= worse {
                    regressions.push(format!(
                        "{} regressed: {better:.0} not below {worse:.0}",
                        win.what
                    ));
                }
                for key in [win.better, win.worse] {
                    if get_f64(baseline, key).is_none() {
                        regressions.push(stale_baseline_message(key));
                    }
                }
            }
            _ => skipped.push(format!("{} fields missing from current export", win.what)),
        }
    }

    // Serial throughput is enforced on every run: one pinned core measures
    // it as faithfully as eight, so it is never CPU-gated. Lower is better.
    let check_ns_per_day =
        |key: &str, tolerance: f64, log: &mut Vec<String>, regressions: &mut Vec<String>| {
            if let (Some(cur), Some(base)) = (get_f64(current, key), get_f64(baseline, key)) {
                let ceiling = base * (1.0 + tolerance);
                log.push(format!(
                    "{key}: {cur:.0} vs baseline {base:.0} (ceiling {ceiling:.0})"
                ));
                if cur > ceiling {
                    regressions.push(format!(
                        "{key} regressed: {cur:.0} > {ceiling:.0} (baseline {base:.0} + {}%)",
                        (tolerance * 100.0) as u64
                    ));
                }
            }
        };
    // Speedups: higher is better, so the gate is a floor below the baseline.
    let check_speedup_floor =
        |key: &str, tolerance: f64, log: &mut Vec<String>, regressions: &mut Vec<String>| {
            if let (Some(cur), Some(base)) = (get_f64(current, key), get_f64(baseline, key)) {
                let floor = base * (1.0 - tolerance);
                log.push(format!(
                    "{key}: {cur:.2} vs baseline {base:.2} (floor {floor:.2})"
                ));
                if cur < floor {
                    regressions.push(format!(
                        "{key} regressed: {cur:.2} < {floor:.2} (baseline {base:.2} - {}%)",
                        (tolerance * 100.0) as u64
                    ));
                }
            }
        };
    check_ns_per_day("serial_ns_per_day", TOLERANCE, &mut log, &mut regressions);

    let cpus_ok = |doc: &Json| doc["parallelism"].as_u64().unwrap_or(0) >= MIN_CPUS;
    let timing_gates_skipped = !cpus_ok(current) || !cpus_ok(baseline);
    if timing_gates_skipped {
        skipped.push(format!(
            "timing gates skipped: current parallelism={}, baseline parallelism={} — parallel timing checks need >= {MIN_CPUS} CPUs on both sides",
            current["parallelism"].as_u64().unwrap_or(0),
            baseline["parallelism"].as_u64().unwrap_or(0),
        ));
    } else {
        check_speedup_floor("sharded_speedup", TOLERANCE, &mut log, &mut regressions);
        check_ns_per_day("sharded4_ns_per_day", TOLERANCE, &mut log, &mut regressions);
        check_speedup_floor(
            "pipeline_speedup",
            PIPELINE_TOLERANCE,
            &mut log,
            &mut regressions,
        );
        check_ns_per_day(
            "pipelined4_ns_per_day",
            PIPELINE_TOLERANCE,
            &mut log,
            &mut regressions,
        );
    }

    if regressions.is_empty() {
        (
            Outcome::Pass {
                skipped,
                timing_gates_skipped,
            },
            log,
        )
    } else {
        (Outcome::Fail { regressions }, log)
    }
}

fn load(path: &str, is_baseline: bool) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if is_baseline && err.kind() == std::io::ErrorKind::NotFound => {
            eprintln!("bench-compare: {}", missing_baseline_message(path));
            std::process::exit(2);
        }
        Err(err) => {
            eprintln!("bench-compare: cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    Json::parse(&text).unwrap_or_else(|err| {
        eprintln!("bench-compare: cannot parse {path}: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let require_timing_gates = args.iter().any(|a| a == "--require-timing-gates");
    args.retain(|a| a != "--require-timing-gates");
    let [current_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: bench-compare [--require-timing-gates] <current.json> <baseline.json>");
        std::process::exit(2);
    };
    let current = load(current_path, false);
    let baseline = load(baseline_path, true);
    let (outcome, log) = compare(&current, &baseline);
    for line in &log {
        println!("bench-compare: {line}");
    }
    match outcome {
        Outcome::Pass {
            skipped,
            timing_gates_skipped,
        } => {
            for line in skipped {
                println!("bench-compare: skipped — {line}");
            }
            if require_timing_gates && timing_gates_skipped {
                eprintln!(
                    "bench-compare: FAIL — --require-timing-gates is set but the parallel \
                     timing gates were skipped; regenerate BENCH_streaming.json on a machine \
                     with >= {MIN_CPUS} CPUs (see the module docs) so the gates can fire"
                );
                std::process::exit(1);
            }
            println!("bench-compare: OK");
        }
        Outcome::Fail { regressions } => {
            for line in regressions {
                eprintln!("bench-compare: REGRESSION — {line}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A complete export carrying every enforced metric (the shape the
    /// streaming bench writes today).
    fn export(parallelism: u64, speedup: f64, serial_ns: u64, inc: u64, full: u64) -> Json {
        Json::object()
            .with("bench", "streaming")
            .with("parallelism", parallelism)
            .with("sharded_speedup", speedup)
            .with("serial_ns_per_day", serial_ns)
            .with("sharded4_ns_per_day", serial_ns / 2)
            .with("pipelined4_ns_per_day", 300_000u64)
            .with("pipeline_speedup", 1.5f64)
            .with("snapshot_bytes_fetched_incremental", inc)
            .with("snapshot_bytes_fetched_full", full)
            .with("resident_block_bytes_mem", 10_000u64)
            .with("resident_block_bytes_paged", 4_000u64)
            .with("appview_resident_bytes_mem", 5_000u64)
            .with("appview_resident_bytes_paged", 900u64)
            .with("mst_structural_bytes", 4_000u64)
            .with("mst_structural_bytes_uncompressed", 5_000u64)
            .with("padding_overhead_none_bytes", 1_200u64)
            .with("padding_overhead_bytes", 9_000u64)
            .with("observer_accuracy_none", 0.8f64)
            .with("observer_accuracy_bucketed", 0.5f64)
            .with("bytes_per_did_base", 2_000u64)
            .with("bytes_per_did_large", 800u64)
    }

    #[test]
    fn equal_exports_pass() {
        let doc = export(8, 3.0, 1_000_000, 700, 1_000);
        let (outcome, log) = compare(&doc, &doc);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
        assert!(!log.is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current = export(8, 2.5, 1_150_000, 800, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
    }

    #[test]
    fn speedup_regression_fails() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current = export(8, 2.0, 1_000_000, 700, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(
            regressions[0].contains("sharded_speedup"),
            "{regressions:?}"
        );
    }

    #[test]
    fn ns_per_day_regression_fails() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current = export(8, 3.0, 1_500_000, 700, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(
            regressions.iter().any(|r| r.contains("serial_ns_per_day")),
            "{regressions:?}"
        );
    }

    #[test]
    fn pipeline_speedup_regression_fails_at_fifteen_percent() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        // 1.20 vs baseline 1.5: a 20 % drop, past the 15 % pipeline gate.
        let current = export(8, 3.0, 1_000_000, 700, 1_000).with("pipeline_speedup", 1.2f64);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(
            regressions.iter().any(|r| r.contains("pipeline_speedup")),
            "{regressions:?}"
        );
        // A drift inside the 15 % tolerance passes.
        let current = export(8, 3.0, 1_000_000, 700, 1_000).with("pipeline_speedup", 1.4f64);
        let (outcome, _) = compare(&current, &baseline);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
    }

    #[test]
    fn pipelined_ns_per_day_regression_fails() {
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current =
            export(8, 3.0, 1_000_000, 700, 1_000).with("pipelined4_ns_per_day", 500_000u64);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("pipelined4_ns_per_day")),
            "{regressions:?}"
        );
    }

    #[test]
    fn pipeline_checks_are_cpu_gated_like_the_other_parallel_timings() {
        // A pipeline collapse on a 1-CPU container must not fail the build.
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let current = export(1, 0.9, 1_000_000, 700, 1_000)
            .with("pipeline_speedup", 0.4f64)
            .with("pipelined4_ns_per_day", 10_000_000u64);
        let (outcome, _) = compare(&current, &baseline);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
    }

    #[test]
    fn few_cpus_skip_parallel_timing_checks_gracefully() {
        // A parallel collapse on a 1-CPU container must not fail the build —
        // the same hardware gate the bench's own speedup assertion uses.
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let current =
            export(1, 0.5, 1_000_000, 700, 1_000).with("sharded4_ns_per_day", 10_000_000u64);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Pass {
            skipped,
            timing_gates_skipped,
        } = outcome
        else {
            panic!("expected graceful skip");
        };
        assert!(timing_gates_skipped, "the skip must be flagged for CI");
        // The notice names both sides' parallelism so a disarmed baseline
        // is visible in the log (and fatal under --require-timing-gates).
        let notice = skipped
            .iter()
            .find(|s| s.starts_with("timing gates skipped:"))
            .expect("skip notice present");
        assert!(notice.contains("baseline parallelism=1"), "{notice}");
        assert!(notice.contains("parallel timing"), "{notice}");
    }

    #[test]
    fn timing_gates_firing_clears_the_skip_flag() {
        let doc = export(8, 3.0, 1_000_000, 700, 1_000);
        let (outcome, _) = compare(&doc, &doc);
        let Outcome::Pass {
            timing_gates_skipped,
            ..
        } = outcome
        else {
            panic!("expected pass");
        };
        assert!(!timing_gates_skipped, ">=4 CPUs on both sides: gates fire");
    }

    #[test]
    fn sublinear_bytes_per_did_win_is_always_enforced() {
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        // Per-DID residency growing with population means federation lost
        // its scale-out story: fails even on 1 CPU.
        let bad = export(1, 0.9, 1_000_000, 700, 1_000).with("bytes_per_did_large", 2_500u64);
        let (outcome, _) = compare(&bad, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(regressions[0].contains("per-DID"), "{regressions:?}");
        // A stale baseline lacking the metric fails loudly too.
        let stale = export(1, 0.9, 1_000_000, 700, 1_000)
            .without("bytes_per_did_base")
            .without("bytes_per_did_large");
        let current = export(1, 0.9, 1_000_000, 700, 1_000);
        let (outcome, _) = compare(&current, &stale);
        assert!(matches!(outcome, Outcome::Fail { .. }), "{outcome:?}");
    }

    #[test]
    fn serial_ns_per_day_is_enforced_even_on_one_cpu() {
        // Serial throughput is never CPU-gated: a 1-CPU container measures
        // it faithfully, so drifting past the tolerance fails the build.
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let current = export(1, 0.9, 1_500_000, 700, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected serial regression failure");
        };
        assert!(
            regressions.iter().any(|r| r.contains("serial_ns_per_day")),
            "{regressions:?}"
        );
    }

    #[test]
    fn snapshot_traffic_win_is_always_enforced() {
        // Even on 1 CPU, losing the incremental-vs-full byte win fails.
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let current = export(1, 0.9, 1_000_000, 1_200, 1_000);
        let (outcome, _) = compare(&current, &baseline);
        assert!(matches!(outcome, Outcome::Fail { .. }), "{outcome:?}");
    }

    #[test]
    fn resident_bytes_win_is_always_enforced() {
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        // Paged resident at or above mem: fails even on 1 CPU.
        let bad =
            export(1, 0.9, 1_000_000, 700, 1_000).with("resident_block_bytes_paged", 10_000u64);
        let (outcome, _) = compare(&bad, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(regressions[0].contains("resident"), "{regressions:?}");
    }

    #[test]
    fn appview_resident_bytes_win_is_always_enforced() {
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let bad =
            export(1, 0.9, 1_000_000, 700, 1_000).with("appview_resident_bytes_paged", 5_000u64);
        let (outcome, _) = compare(&bad, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(regressions[0].contains("appview"), "{regressions:?}");
    }

    #[test]
    fn padding_overhead_win_is_always_enforced() {
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        // Bucket padding no longer costing more than bare framing means the
        // mitigation accounting broke: fails even on 1 CPU.
        let bad = export(1, 0.9, 1_000_000, 700, 1_000).with("padding_overhead_bytes", 1_000u64);
        let (outcome, _) = compare(&bad, &baseline);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected failure");
        };
        assert!(
            regressions[0].contains("framing overhead"),
            "{regressions:?}"
        );
    }

    #[test]
    fn mst_compression_win_is_always_enforced() {
        let baseline = export(1, 0.9, 1_000_000, 700, 1_000);
        let bad = export(1, 0.9, 1_000_000, 700, 1_000).with("mst_structural_bytes", 5_000u64);
        let (outcome, _) = compare(&bad, &baseline);
        assert!(matches!(outcome, Outcome::Fail { .. }), "{outcome:?}");
    }

    #[test]
    fn current_export_missing_fields_skips_gracefully() {
        // Older exports (no appview/mst fields) stay comparable: a current
        // export that lacks a structural pair skips that check instead of
        // failing — only *stale baselines* fail, below.
        let slim = Json::object()
            .with("parallelism", 1u64)
            .with("snapshot_bytes_fetched_incremental", 700u64)
            .with("snapshot_bytes_fetched_full", 1_000u64);
        let (outcome, _) = compare(&slim, &slim);
        let Outcome::Pass { skipped, .. } = outcome else {
            panic!("expected pass");
        };
        assert!(skipped.iter().any(|s| s.contains("appview")));
        assert!(skipped.iter().any(|s| s.contains("MST")));
    }

    #[test]
    fn baseline_lacking_a_newly_added_key_fails_with_a_clear_message() {
        // The PR that adds a metric must regenerate the committed baseline:
        // a baseline without `appview_resident_bytes_*` against a current
        // export that enforces them is a loud, actionable failure — not a
        // silent skip and not a confusing JSON error.
        let current = export(1, 0.9, 1_000_000, 700, 1_000);
        let stale = Json::object()
            .with("parallelism", 1u64)
            .with("snapshot_bytes_fetched_incremental", 700u64)
            .with("snapshot_bytes_fetched_full", 1_000u64)
            .with("resident_block_bytes_mem", 10_000u64)
            .with("resident_block_bytes_paged", 4_000u64)
            .with("mst_structural_bytes", 4_000u64)
            .with("mst_structural_bytes_uncompressed", 5_000u64);
        let (outcome, _) = compare(&current, &stale);
        let Outcome::Fail { regressions } = outcome else {
            panic!("expected stale-baseline failure");
        };
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("appview_resident_bytes_paged") && r.contains("regenerate")),
            "{regressions:?}"
        );
    }

    #[test]
    fn unknown_keys_in_either_export_are_tolerated() {
        // New informational counters (the chaos scenario's retry/backfill/
        // storm exports, and whatever lands next) must not break comparison
        // in either direction: a current export carrying keys the baseline
        // lacks — or vice versa — passes as long as the enforced metrics
        // hold. Only STRUCTURAL_WINS entries require baseline regeneration.
        let baseline = export(8, 3.0, 1_000_000, 700, 1_000);
        let current = export(8, 3.0, 1_000_000, 700, 1_000)
            .with("retry_attempts", 1_234u64)
            .with("backfill_full_fetches", 56u64)
            .with("label_storm_peak", 789u64)
            .with("cursor_gap_drops", 42u64);
        let (outcome, _) = compare(&current, &baseline);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
        let (outcome, _) = compare(&baseline, &current);
        assert!(matches!(outcome, Outcome::Pass { .. }), "{outcome:?}");
    }

    #[test]
    fn missing_baseline_file_message_is_actionable() {
        let message = missing_baseline_message("BENCH_streaming.json");
        assert!(message.contains("BENCH_streaming.json"));
        assert!(message.contains("cargo bench --bench streaming -- --json"));
        assert!(message.contains("commit"));
        let stale = stale_baseline_message("appview_resident_bytes_mem");
        assert!(stale.contains("appview_resident_bytes_mem"));
        assert!(stale.contains("regenerate"));
    }
}
