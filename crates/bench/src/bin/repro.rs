//! Reproduction harness: regenerates every table and figure of the paper from
//! a seeded simulation run.
//!
//! Usage:
//!   repro [--seed N] [--scale N] [--seeds A,B,...] [--scales A,B,...]
//!         [--json] [--stream] [--batch]
//!
//! `--scale` is the denominator applied to the live network's size
//! (default 2000 ⇒ ≈2,760 users). `--json` additionally prints the headline
//! numbers as JSON (the format EXPERIMENTS.md records). `--stream` prints
//! the streaming pipeline's summary (observations, peak in-flight events)
//! after the report; `--batch` forces the legacy materializing collector.
//! `--seeds`/`--scales` run a whole grid in one call via `StudyBatch` and
//! print the comparison table instead of a single report.
//!
//! Unknown flags and missing/malformed values are errors (exit code 2).

use bsky_study::{StudyBatch, StudyReport};
use bsky_workload::ScenarioConfig;

const USAGE: &str =
    "usage: repro [--seed N] [--scale N] [--seeds A,B,...] [--scales A,B,...] [--json] [--stream] [--batch]";

fn usage_error(message: &str) -> ! {
    eprintln!("repro: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Parse the value following a flag, or die with usage.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(raw) = value else {
        usage_error(&format!("{flag} requires a value"));
    };
    match raw.parse() {
        Ok(parsed) => parsed,
        Err(_) => usage_error(&format!("invalid value for {flag}: {raw:?}")),
    }
}

/// Parse a comma-separated list following a flag, or die with usage.
fn parse_list(flag: &str, value: Option<&String>) -> Vec<u64> {
    let Some(raw) = value else {
        usage_error(&format!("{flag} requires a comma-separated list"));
    };
    raw.split(',')
        .map(|item| match item.trim().parse() {
            Ok(parsed) => parsed,
            Err(_) => usage_error(&format!("invalid entry in {flag}: {item:?}")),
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = 42u64;
    let mut scale = 2_000u64;
    let mut seeds: Option<Vec<u64>> = None;
    let mut scales: Option<Vec<u64>> = None;
    let mut json = false;
    let mut stream = false;
    let mut batch = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = parse_value("--seed", args.get(i + 1));
                i += 1;
            }
            "--scale" => {
                scale = parse_value("--scale", args.get(i + 1));
                i += 1;
            }
            "--seeds" => {
                seeds = Some(parse_list("--seeds", args.get(i + 1)));
                i += 1;
            }
            "--scales" => {
                scales = Some(parse_list("--scales", args.get(i + 1)));
                i += 1;
            }
            "--json" => json = true,
            "--stream" => stream = true,
            "--batch" => batch = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            unknown => usage_error(&format!("unknown argument {unknown:?}")),
        }
        i += 1;
    }
    if batch && stream {
        usage_error("--batch and --stream are mutually exclusive");
    }
    if scale == 0 {
        usage_error("--scale must be positive");
    }

    // Grid mode: N seeds × M scales through the StudyBatch runner.
    if seeds.is_some() || scales.is_some() {
        if batch {
            usage_error("--batch cannot be combined with --seeds/--scales");
        }
        let seeds = seeds.unwrap_or_else(|| vec![seed]);
        let scales = scales.unwrap_or_else(|| vec![scale]);
        if scales.contains(&0) {
            usage_error("--scales entries must be positive");
        }
        let grid = StudyBatch::grid(ScenarioConfig::repro_scale(seed), &seeds, &scales);
        eprintln!("running study batch: {} scenarios...", grid.len());
        let runs = grid.run();
        if stream {
            for run in &runs {
                eprintln!(
                    "seed {} scale 1:{} — {}",
                    run.report.config.seed,
                    run.report.config.scale,
                    run.summary.render()
                );
            }
        }
        print!("{}", StudyBatch::render_summary(&runs));
        if json {
            let array =
                bsky_study::json::Json::Arr(runs.iter().map(|run| run.report.to_json()).collect());
            println!("{}", array.to_string_pretty());
        }
        return;
    }

    let mut config = ScenarioConfig::repro_scale(seed);
    config.scale = scale;
    eprintln!(
        "running study: seed {seed}, scale 1:{scale} (≈{} users, {} simulated days)...",
        config.target_users(),
        config.total_days()
    );
    let report = if batch {
        StudyReport::run_batch(config)
    } else {
        let (report, summary) = StudyReport::run_streaming(config);
        if stream {
            eprintln!("{}", summary.render());
        }
        report
    };
    println!("{}", report.render());
    if json {
        println!("{}", report.to_json().to_string_pretty());
    }
}
