//! Reproduction harness: regenerates every table and figure of the paper from
//! a seeded simulation run.
//!
//! Usage:
//!   repro [--seed N] [--scale N] [--seeds A,B,...] [--scales A,B,...]
//!         [--jobs auto|N] [--shards N] [--pipeline] [--analyzer-threads N]
//!         [--appview-shards N] [--writeback on|off] [--relays N]
//!         [--json] [--stream] [--batch] [--incremental | --full-snapshots]
//!         [--store mem|paged] [--page-size BYTES] [--spill-dir DIR]
//!         [--padding none|buckets|constant] [--batch-window SECS]
//!         [--scenario NAME] [--faults SPEC]
//!
//! Every flag maps onto one field of [`bsky_study::RunSpec`] — the single
//! run description all library entry points take — except the three output
//! modes: `--json` additionally prints the headline numbers as JSON (the
//! format EXPERIMENTS.md records), `--stream` prints the streaming
//! pipeline's summary (observations, peak in-flight events) after the
//! report, and `--batch` forces the legacy materializing collector.
//!
//! `--scale` is the denominator applied to the live network's size
//! (default 2000 ⇒ ≈2,760 users). `--jobs N` runs the collection sharded:
//! the population is partitioned by DID hash into `--shards` shards
//! (default: one per job) simulated on `N` worker threads and merged — the
//! report is byte-identical to the serial run. `--jobs auto` (the default
//! when only `--shards` is given) resolves to the machine's available
//! parallelism clamped to the shard count. `--pipeline` decouples each
//! shard's producer from its analyzers over a bounded channel and fans the
//! analyzer set across `--analyzer-threads N` workers (default 2) — same
//! bytes, more cores. `--seeds`/`--scales` run a whole grid in one call
//! via `StudyBatch` and print the comparison table instead of a single
//! report.
//! `--incremental` (the default) keeps the §3 repositories dataset through
//! rev-aware weekly syncs with `getRepo(since)` deltas; `--full-snapshots`
//! restores the window-end full refetch.
//! `--store paged` backs every repository, the relay's CAR mirror, the
//! producer's repo mirror and the AppView's entity blocks with the paged
//! disk-spill block store (`--page-size` sets the page capacity in bytes,
//! `--spill-dir` the spill root).
//! `--appview-shards N` partitions the AppView's post/actor indices by
//! entity hash into `N` store-backed shards; `--writeback off` disables the
//! write-back cache in front of those entity stores (on by default).
//! `--relays N` federates the crawl across `N` regional relays, each
//! owning a contiguous slice of the PDS fleet and forwarding its firehose
//! (cursor-resumable, `(did, rev)`-deduplicated) into the super-relay the
//! collector subscribes to.
//! `--padding` and `--batch-window` select the wire framing mitigations
//! (§10). `--scenario NAME` runs one of the named fault scenarios;
//! `--faults SPEC` injects a custom `key=value,...` specification. The two
//! compose: the scenario preset is applied first and the spec's keys
//! overlay it, so `--scenario dns-flap --faults flaky=0.1` adds flakiness
//! on top of the preset. Giving the *same* key two different values in one
//! spec is a contradiction and exits 2.
//!
//! All of these knobs are observationally transparent: snapshots, stores,
//! AppView sharding, the write-back cache and framing move only the
//! `--stream` summary's accounting, and fault placement is a pure function
//! of `(seed, DID, day)` — the rendered report is byte-identical across
//! every combination (scenario runs add an impact section).
//!
//! Unknown flags, missing/malformed values, and conflicting flags are
//! errors (exit code 2); flag conflicts are checked centrally by
//! [`RunSpec::validate`].

use bsky_atproto::blockstore::{StoreConfig, StoreKind};
use bsky_atproto::framing::{FramingPolicy, PaddingPolicy};
use bsky_study::faults::{FaultSpec, SCENARIO_NAMES};
use bsky_study::{RunSpec, SnapshotMode, StudyBatch, StudyReport};
use bsky_workload::ScenarioConfig;

const USAGE: &str = "usage: repro [--seed N] [--scale N] [--seeds A,B,...] [--scales A,B,...] [--jobs auto|N] [--shards N] [--pipeline] [--analyzer-threads N] [--appview-shards N] [--writeback on|off] [--relays N] [--json] [--stream] [--batch] [--incremental | --full-snapshots] [--store mem|paged] [--page-size BYTES] [--spill-dir DIR] [--padding none|buckets|constant] [--batch-window SECS] [--scenario NAME] [--faults SPEC]";

/// Parsed command line: the library [`RunSpec`] plus the CLI-only output
/// modes.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    spec: RunSpec,
    json: bool,
    stream: bool,
    batch: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            spec: RunSpec::new(ScenarioConfig::repro_scale(42)),
            json: false,
            stream: false,
            batch: false,
        }
    }
}

/// Parse the value following a flag.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let Some(raw) = value else {
        return Err(format!("{flag} requires a value"));
    };
    raw.parse()
        .map_err(|_| format!("invalid value for {flag}: {raw:?}"))
}

/// Parse a comma-separated list following a flag.
fn parse_list(flag: &str, value: Option<&String>) -> Result<Vec<u64>, String> {
    let Some(raw) = value else {
        return Err(format!("{flag} requires a comma-separated list"));
    };
    raw.split(',')
        .map(|item| {
            item.trim()
                .parse()
                .map_err(|_| format!("invalid entry in {flag}: {item:?}"))
        })
        .collect()
}

/// Parse and validate the full argument list (everything after `argv[0]`).
/// Returns `Ok(None)` for `--help`. Flag syntax (unknown flags, malformed
/// values, flags requiring other flags) is checked here; every cross-knob
/// conflict is delegated to [`RunSpec::validate`].
fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    let mut shards: Option<usize> = None;
    let mut analyzer_threads: Option<usize> = None;
    let mut incremental_flag = false;
    let mut full_snapshots_flag = false;
    let mut store_kind: Option<StoreKind> = None;
    let mut page_size: Option<usize> = None;
    let mut spill_dir: Option<String> = None;
    let mut padding: Option<PaddingPolicy> = None;
    let mut batch_window: Option<u64> = None;
    let mut scenario: Option<String> = None;
    let mut faults_spec: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                opts.spec.config.seed = parse_value("--seed", args.get(i + 1))?;
                i += 1;
            }
            "--scale" => {
                opts.spec.config.scale = parse_value("--scale", args.get(i + 1))?;
                i += 1;
            }
            "--seeds" => {
                opts.spec.seeds = parse_list("--seeds", args.get(i + 1))?;
                i += 1;
            }
            "--scales" => {
                opts.spec.scales = parse_list("--scales", args.get(i + 1))?;
                i += 1;
            }
            "--jobs" => {
                let raw: String = parse_value("--jobs", args.get(i + 1))?;
                if raw == "auto" {
                    opts.spec.jobs = None;
                } else {
                    opts.spec.jobs = Some(
                        raw.parse()
                            .map_err(|_| format!("invalid value for --jobs: {raw:?}"))?,
                    );
                }
                i += 1;
            }
            "--pipeline" => opts.spec.pipeline = true,
            "--analyzer-threads" => {
                analyzer_threads = Some(parse_value("--analyzer-threads", args.get(i + 1))?);
                i += 1;
            }
            "--shards" => {
                shards = Some(parse_value("--shards", args.get(i + 1))?);
                i += 1;
            }
            "--appview-shards" => {
                opts.spec.appview_shards = parse_value("--appview-shards", args.get(i + 1))?;
                i += 1;
            }
            "--relays" => {
                opts.spec.relays = parse_value("--relays", args.get(i + 1))?;
                i += 1;
            }
            "--writeback" => {
                let value: String = parse_value("--writeback", args.get(i + 1))?;
                opts.spec.write_back = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!(
                            "invalid value for --writeback: {other:?} (expected on or off)"
                        ))
                    }
                };
                i += 1;
            }
            "--store" => {
                let value: String = parse_value("--store", args.get(i + 1))?;
                store_kind = Some(match value.as_str() {
                    "mem" => StoreKind::Mem,
                    "paged" => StoreKind::Paged,
                    other => {
                        return Err(format!(
                            "invalid value for --store: {other:?} (expected mem or paged)"
                        ))
                    }
                });
                i += 1;
            }
            "--page-size" => {
                page_size = Some(parse_value("--page-size", args.get(i + 1))?);
                i += 1;
            }
            "--spill-dir" => {
                spill_dir = Some(parse_value("--spill-dir", args.get(i + 1))?);
                i += 1;
            }
            "--padding" => {
                let value: String = parse_value("--padding", args.get(i + 1))?;
                padding = Some(PaddingPolicy::parse(&value).ok_or_else(|| {
                    format!(
                        "invalid value for --padding: {value:?} (expected none, buckets or constant)"
                    )
                })?);
                i += 1;
            }
            "--batch-window" => {
                batch_window = Some(parse_value("--batch-window", args.get(i + 1))?);
                i += 1;
            }
            "--scenario" => {
                scenario = Some(parse_value("--scenario", args.get(i + 1))?);
                i += 1;
            }
            "--faults" => {
                faults_spec = Some(parse_value("--faults", args.get(i + 1))?);
                i += 1;
            }
            "--json" => opts.json = true,
            "--stream" => opts.stream = true,
            "--batch" => opts.batch = true,
            "--incremental" => incremental_flag = true,
            "--full-snapshots" => full_snapshots_flag = true,
            "--help" | "-h" => return Ok(None),
            unknown => return Err(format!("unknown argument {unknown:?}")),
        }
        i += 1;
    }
    if opts.batch && opts.stream {
        return Err("--batch and --stream are mutually exclusive".into());
    }
    if incremental_flag && full_snapshots_flag {
        return Err("--incremental and --full-snapshots are mutually exclusive".into());
    }
    if full_snapshots_flag {
        opts.spec.snapshots = SnapshotMode::FullRefetch;
    }
    // The shard count defaults to one shard per explicit worker (auto jobs
    // keep the default single shard); an explicit `--shards` may exceed
    // the worker count (more shards than threads is fine — they queue) but
    // never the other way around (validate checks).
    opts.spec.shards = shards.unwrap_or(opts.spec.jobs.unwrap_or(1));
    if opts.batch && (opts.spec.jobs.unwrap_or(1) > 1 || opts.spec.shards > 1) {
        return Err("--batch cannot be combined with --jobs/--shards".into());
    }
    if opts.batch && opts.spec.is_grid() {
        return Err("--batch cannot be combined with --seeds/--scales".into());
    }
    // The intra-shard pipeline replaces the sink the streaming engine
    // folds into; the legacy materializing collector has no equivalent.
    if opts.batch && opts.spec.pipeline {
        return Err("--batch cannot be combined with --pipeline".into());
    }
    if let Some(threads) = analyzer_threads {
        if !opts.spec.pipeline {
            return Err("--analyzer-threads requires --pipeline".into());
        }
        opts.spec.analyzer_threads = threads;
    }
    // Block-store selection: page geometry only makes sense for the paged
    // backend.
    let kind = store_kind.unwrap_or(StoreKind::Mem);
    if kind == StoreKind::Mem && (page_size.is_some() || spill_dir.is_some()) {
        return Err("--page-size/--spill-dir require --store paged".into());
    }
    if let Some(bytes) = page_size {
        if bytes == 0 {
            return Err("--page-size must be positive".into());
        }
    }
    opts.spec.framing = FramingPolicy::new(padding.unwrap_or_default(), batch_window.unwrap_or(0));
    // Fault injection: the scenario preset (if any) is parsed first, then
    // the `--faults` spec overlays it key by key — preset knobs the spec
    // doesn't name survive, named keys override. Only a self-contradictory
    // spec (one key, two values) is an error; the batch path stays quiet by
    // construction.
    if let Some(name) = &scenario {
        opts.spec.faults = FaultSpec::scenario(name).ok_or_else(|| {
            format!(
                "unknown scenario {name:?} (expected one of: {})",
                SCENARIO_NAMES.join(", ")
            )
        })?;
        opts.spec.scenario = Some(name.clone());
    }
    if let Some(spec) = &faults_spec {
        opts.spec.faults = FaultSpec::parse_onto(opts.spec.faults.clone(), spec)
            .map_err(|e| format!("invalid --faults spec: {e}"))?;
    }
    if opts.batch && !opts.spec.faults.is_quiet() {
        return Err("--scenario/--faults cannot be combined with --batch".into());
    }
    opts.spec.store = match kind {
        StoreKind::Mem => StoreConfig::mem(),
        StoreKind::Paged => {
            let mut store = StoreConfig::paged();
            if let Some(bytes) = page_size {
                store = store.page_size(bytes);
            }
            if let Some(dir) = spill_dir {
                store = store.spill_dir(dir);
            }
            store
        }
    };
    // Every remaining conflict rule lives in one place for the CLI and
    // library callers alike.
    opts.spec.validate()?;
    Ok(Some(opts))
}

fn usage_error(message: &str) -> ! {
    eprintln!("repro: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            eprintln!("{USAGE}");
            return;
        }
        Err(message) => usage_error(&message),
    };
    let spec = &opts.spec;

    // Grid mode: N seeds × M scales through the StudyBatch runner.
    if spec.is_grid() {
        let grid = StudyBatch::from_spec(spec);
        eprintln!("running study batch: {} scenarios...", grid.len());
        let runs = grid.run();
        if opts.stream {
            for run in &runs {
                eprintln!(
                    "seed {} scale 1:{} — {}",
                    run.report.config.seed,
                    run.report.config.scale,
                    run.summary.render()
                );
            }
        }
        print!("{}", StudyBatch::render_summary(&runs));
        if opts.json {
            let array =
                bsky_study::json::Json::Arr(runs.iter().map(|run| run.report.to_json()).collect());
            println!("{}", array.to_string_pretty());
        }
        return;
    }

    eprintln!(
        "running study: seed {}, scale 1:{} (≈{} users, {} simulated days, {} shard(s) on {} thread(s){})...",
        spec.config.seed,
        spec.config.scale,
        spec.config.target_users(),
        spec.config.total_days(),
        spec.shards,
        spec.effective_jobs(),
        if spec.pipeline {
            format!(", pipelined × {} analyzer thread(s)", spec.analyzer_threads)
        } else {
            String::new()
        },
    );
    let report = if opts.batch {
        StudyReport::run_batch(spec)
    } else {
        let (report, summary) = StudyReport::run(spec);
        if opts.stream {
            eprint!("{}", summary.render());
        }
        report
    };
    println!("{}", report.render());
    if opts.json {
        println!("{}", report.to_json().to_string_pretty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opts, Options::default());
        assert_eq!(opts.spec.config.seed, 42);
        assert_eq!(opts.spec.config.scale, 2_000);
        assert!(opts.spec.write_back);
    }

    #[test]
    fn jobs_and_shards_parse() {
        let opts = parse_args(&args(&["--jobs", "4"])).unwrap().unwrap();
        assert_eq!(opts.spec.jobs, Some(4));
        assert_eq!(opts.spec.shards, 4, "shards default to one per job");
        let opts = parse_args(&args(&["--jobs", "2", "--shards", "8"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.jobs, Some(2));
        assert_eq!(opts.spec.shards, 8);
    }

    #[test]
    fn auto_jobs_parse() {
        // The default is auto: one shard, so the run stays serial.
        let opts = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opts.spec.jobs, None);
        assert_eq!(opts.spec.shards, 1);
        assert_eq!(opts.spec.effective_jobs(), 1);
        // An explicit `--jobs auto` with `--shards` resolves to the
        // machine's parallelism clamped to the shard count.
        let opts = parse_args(&args(&["--jobs", "auto", "--shards", "8"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.jobs, None);
        assert_eq!(opts.spec.shards, 8);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(opts.spec.effective_jobs(), cores.clamp(1, 8));
        assert!(parse_args(&args(&["--jobs", "many"])).is_err());
    }

    #[test]
    fn pipeline_flags_parse() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert!(!opts.spec.pipeline);
        let opts = parse_args(&args(&["--pipeline"])).unwrap().unwrap();
        assert!(opts.spec.pipeline);
        assert_eq!(opts.spec.analyzer_threads, 2, "default worker count");
        let opts = parse_args(&args(&["--pipeline", "--analyzer-threads", "4"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.analyzer_threads, 4);
        // Composes with sharding, stores and scenarios.
        assert!(parse_args(&args(&[
            "--pipeline",
            "--analyzer-threads",
            "2",
            "--jobs",
            "2",
            "--store",
            "paged",
            "--scenario",
            "label-storm",
        ]))
        .is_ok());
        // Errors: worker count without the pipeline, zero/over-limit
        // counts, batch and grid conflicts.
        let err = parse_args(&args(&["--analyzer-threads", "2"])).unwrap_err();
        assert!(err.contains("requires --pipeline"), "{err}");
        assert!(parse_args(&args(&["--pipeline", "--analyzer-threads", "0"])).is_err());
        assert!(parse_args(&args(&["--pipeline", "--analyzer-threads", "9"])).is_err());
        assert!(parse_args(&args(&["--pipeline", "--analyzer-threads"])).is_err());
        assert!(parse_args(&args(&["--pipeline", "--batch"])).is_err());
        assert!(parse_args(&args(&["--pipeline", "--seeds", "1,2"])).is_err());
    }

    #[test]
    fn zero_jobs_is_an_error() {
        let err = parse_args(&args(&["--jobs", "0"])).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn jobs_exceeding_shards_is_an_error() {
        let err = parse_args(&args(&["--jobs", "4", "--shards", "2"])).unwrap_err();
        assert!(err.contains("exceeds the shard count"), "{err}");
    }

    #[test]
    fn unknown_flags_and_bad_values_are_errors() {
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--seed"])).is_err());
        assert!(parse_args(&args(&["--seed", "abc"])).is_err());
        assert!(parse_args(&args(&["--scale", "0"])).is_err());
        assert!(parse_args(&args(&["--seeds", "1,x"])).is_err());
        assert!(parse_args(&args(&["--scales", "0"])).is_err());
    }

    #[test]
    fn conflicting_modes_are_errors() {
        assert!(parse_args(&args(&["--batch", "--stream"])).is_err());
        assert!(parse_args(&args(&["--batch", "--jobs", "2"])).is_err());
        assert!(parse_args(&args(&["--batch", "--seeds", "1,2"])).is_err());
        assert!(parse_args(&args(&["--jobs", "2", "--seeds", "1,2"])).is_err());
        assert!(parse_args(&args(&["--incremental", "--full-snapshots"])).is_err());
        assert!(parse_args(&args(&["--full-snapshots", "--seeds", "1,2"])).is_err());
    }

    #[test]
    fn appview_shards_flag_parses() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opts.spec.appview_shards, 1);
        let opts = parse_args(&args(&["--appview-shards", "4"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.appview_shards, 4);
        // Composes with the engine shards, store backends and batch mode.
        let opts = parse_args(&args(&[
            "--appview-shards",
            "4",
            "--jobs",
            "2",
            "--store",
            "paged",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(opts.spec.appview_shards, 4);
        assert!(parse_args(&args(&["--appview-shards", "2", "--batch"])).is_ok());
        // Errors: zero, missing/garbage values, grid runs.
        assert!(parse_args(&args(&["--appview-shards", "0"])).is_err());
        assert!(parse_args(&args(&["--appview-shards"])).is_err());
        assert!(parse_args(&args(&["--appview-shards", "x"])).is_err());
        assert!(parse_args(&args(&["--appview-shards", "2", "--seeds", "1,2"])).is_err());
    }

    #[test]
    fn writeback_flag_parses() {
        let opts = parse_args(&args(&["--writeback", "on"])).unwrap().unwrap();
        assert!(opts.spec.write_back);
        let opts = parse_args(&args(&["--writeback", "off"])).unwrap().unwrap();
        assert!(!opts.spec.write_back);
        // Composes with sharding, stores and batch mode.
        let opts = parse_args(&args(&[
            "--writeback",
            "off",
            "--appview-shards",
            "4",
            "--store",
            "paged",
            "--jobs",
            "2",
        ]))
        .unwrap()
        .unwrap();
        assert!(!opts.spec.write_back);
        assert!(parse_args(&args(&["--writeback", "off", "--batch"])).is_ok());
        // Errors: bad/missing values.
        assert!(parse_args(&args(&["--writeback", "maybe"])).is_err());
        assert!(parse_args(&args(&["--writeback"])).is_err());
    }

    #[test]
    fn snapshot_mode_flags_parse() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opts.spec.snapshots, SnapshotMode::Incremental);
        let opts = parse_args(&args(&["--incremental"])).unwrap().unwrap();
        assert_eq!(opts.spec.snapshots, SnapshotMode::Incremental);
        let opts = parse_args(&args(&["--full-snapshots"])).unwrap().unwrap();
        assert_eq!(opts.spec.snapshots, SnapshotMode::FullRefetch);
        // The snapshot mode composes with sharding and batch mode.
        let opts = parse_args(&args(&["--full-snapshots", "--jobs", "2"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.snapshots, SnapshotMode::FullRefetch);
        assert!(parse_args(&args(&["--batch", "--full-snapshots"])).is_ok());
    }

    #[test]
    fn store_flags_parse() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opts.spec.store.kind, StoreKind::Mem);
        let opts = parse_args(&args(&["--store", "paged"])).unwrap().unwrap();
        assert_eq!(opts.spec.store.kind, StoreKind::Paged);
        let opts = parse_args(&args(&[
            "--store",
            "paged",
            "--page-size",
            "4096",
            "--spill-dir",
            "/tmp/spill",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(opts.spec.store.page_size, 4096);
        assert_eq!(opts.spec.store.spill_dir.as_deref(), Some("/tmp/spill"));
        // The store composes with sharding, snapshot modes and batch mode.
        assert!(parse_args(&args(&["--store", "paged", "--jobs", "2"])).is_ok());
        assert!(parse_args(&args(&["--store", "paged", "--batch"])).is_ok());
        assert!(parse_args(&args(&["--store", "paged", "--full-snapshots"])).is_ok());
    }

    #[test]
    fn bad_store_flags_are_errors() {
        assert!(parse_args(&args(&["--store", "redis"])).is_err());
        assert!(parse_args(&args(&["--store"])).is_err());
        assert!(parse_args(&args(&["--page-size", "4096"])).is_err());
        assert!(parse_args(&args(&["--spill-dir", "/tmp/x"])).is_err());
        assert!(parse_args(&args(&["--store", "paged", "--page-size", "0"])).is_err());
        assert!(parse_args(&args(&["--store", "paged", "--seeds", "1,2"])).is_err());
        assert!(parse_args(&args(&["--store", "mem", "--page-size", "4096"])).is_err());
    }

    #[test]
    fn framing_flags_parse() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opts.spec.framing, FramingPolicy::default());
        assert!(!opts.spec.framing.is_mitigating());
        let opts = parse_args(&args(&["--padding", "buckets", "--batch-window", "60"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.framing.padding, PaddingPolicy::Buckets);
        assert_eq!(opts.spec.framing.batch.window_secs, 60);
        let opts = parse_args(&args(&["--padding", "constant"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.framing.padding, PaddingPolicy::Constant);
        assert_eq!(opts.spec.framing.batch.window_secs, 0);
        // Composes with sharding, stores, snapshot modes and batch mode.
        assert!(parse_args(&args(&[
            "--padding",
            "buckets",
            "--batch-window",
            "2",
            "--jobs",
            "2",
            "--store",
            "paged",
            "--appview-shards",
            "4",
        ]))
        .is_ok());
        assert!(parse_args(&args(&["--padding", "buckets", "--batch"])).is_ok());
        assert!(parse_args(&args(&["--batch-window", "60", "--full-snapshots"])).is_ok());
        // Errors: bad/missing values, grid runs.
        assert!(parse_args(&args(&["--padding", "bubblewrap"])).is_err());
        assert!(parse_args(&args(&["--padding"])).is_err());
        assert!(parse_args(&args(&["--batch-window", "x"])).is_err());
        assert!(parse_args(&args(&["--batch-window"])).is_err());
        assert!(parse_args(&args(&["--padding", "buckets", "--seeds", "1,2"])).is_err());
        assert!(parse_args(&args(&["--batch-window", "60", "--scales", "40000"])).is_err());
        // An explicit no-op policy is fine alongside grids.
        assert!(parse_args(&args(&["--padding", "none", "--seeds", "1,2"])).is_ok());
    }

    #[test]
    fn scenario_and_faults_flags_parse() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert!(opts.spec.faults.is_quiet());
        assert_eq!(opts.spec.scenario, None);
        let opts = parse_args(&args(&["--scenario", "pds-migration"]))
            .unwrap()
            .unwrap();
        assert!(!opts.spec.faults.is_quiet());
        assert_eq!(opts.spec.scenario.as_deref(), Some("pds-migration"));
        let opts = parse_args(&args(&["--faults", "flaky=0.2,gap=0.05"]))
            .unwrap()
            .unwrap();
        assert!(!opts.spec.faults.is_quiet());
        assert_eq!(opts.spec.scenario, None);
        // Composes with sharding, stores, snapshot modes and framing.
        assert!(parse_args(&args(&[
            "--scenario",
            "label-storm",
            "--jobs",
            "2",
            "--store",
            "paged",
            "--appview-shards",
            "4",
            "--full-snapshots",
        ]))
        .is_ok());
        // Errors: unknown scenario (must list the valid names), bad spec,
        // missing values, conflicting modes.
        let err = parse_args(&args(&["--scenario", "earthquake"])).unwrap_err();
        assert!(err.contains("pds-migration"), "{err}");
        assert!(parse_args(&args(&["--scenario"])).is_err());
        assert!(parse_args(&args(&["--faults", "flaky=2.0"])).is_err());
        assert!(parse_args(&args(&["--faults", "frobnicate=1"])).is_err());
        assert!(parse_args(&args(&["--faults"])).is_err());
        assert!(parse_args(&args(&["--scenario", "spam-wave", "--batch"])).is_err());
        assert!(parse_args(&args(&["--scenario", "cursor-gap", "--seeds", "1,2"])).is_err());
        assert!(parse_args(&args(&["--faults", "spam=0.1", "--scales", "40000"])).is_err());
    }

    #[test]
    fn faults_compose_additively_onto_scenario_presets() {
        // A spec on top of a scenario adds fault axes the preset leaves
        // quiet while the preset's own knobs survive.
        let opts = parse_args(&args(&["--scenario", "dns-flap", "--faults", "flaky=0.1"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.scenario.as_deref(), Some("dns-flap"));
        assert_eq!(opts.spec.faults.dns_flap, 0.3, "preset knob survives");
        assert_eq!(opts.spec.faults.flaky_fetch, 0.1, "spec knob added");
        // A spec key the preset also sets overrides the preset value.
        let opts = parse_args(&args(&["--scenario", "dns-flap", "--faults", "dns=0.9"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.faults.dns_flap, 0.9, "spec overrides preset");
        // Flag order doesn't matter: the preset is always the base layer.
        let opts = parse_args(&args(&["--faults", "dns=0.9", "--scenario", "dns-flap"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.faults.dns_flap, 0.9);
        // A bare `--faults` without a scenario still works as before.
        let opts = parse_args(&args(&["--faults", "dns=0.9"]))
            .unwrap()
            .unwrap();
        assert_eq!(opts.spec.faults.dns_flap, 0.9);
        assert_eq!(opts.spec.scenario, None);
        // Contradictory keys inside one spec are an error (exit 2 in main);
        // repeating the same key=value is harmless.
        let err = parse_args(&args(&[
            "--scenario",
            "dns-flap",
            "--faults",
            "dns=0.9,dns=0.1",
        ]))
        .unwrap_err();
        assert!(err.contains("contradictory"), "{err}");
        assert!(parse_args(&args(&["--faults", "dns=0.9,dns=0.9"])).is_ok());
    }

    #[test]
    fn relays_flag_parses() {
        let opts = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opts.spec.relays, 1, "classic single relay by default");
        assert!(!opts.spec.federation());
        let opts = parse_args(&args(&["--relays", "3"])).unwrap().unwrap();
        assert_eq!(opts.spec.relays, 3);
        assert!(opts.spec.federation());
        // Composes with sharding, stores and scenarios.
        assert!(parse_args(&args(&[
            "--relays",
            "2",
            "--jobs",
            "4",
            "--store",
            "paged",
            "--appview-shards",
            "4",
            "--scenario",
            "dns-flap",
        ]))
        .is_ok());
        // Errors: zero relays, grid runs, bad/missing values.
        assert!(parse_args(&args(&["--relays", "0"])).is_err());
        assert!(parse_args(&args(&["--relays", "2", "--seeds", "1,2"])).is_err());
        assert!(parse_args(&args(&["--relays", "two"])).is_err());
        assert!(parse_args(&args(&["--relays"])).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), None);
        assert_eq!(parse_args(&args(&["-h"])).unwrap(), None);
    }
}
