//! Reproduction harness: regenerates every table and figure of the paper from
//! a seeded simulation run.
//!
//! Usage:
//!   repro [--seed N] [--scale N] [--json]
//!
//! `--scale` is the denominator applied to the live network's size
//! (default 2000 ⇒ ≈2,760 users). `--json` additionally prints the headline
//! numbers as JSON (the format EXPERIMENTS.md records).

use bsky_study::StudyReport;
use bsky_workload::ScenarioConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = 42u64;
    let mut scale = 2_000u64;
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(seed);
                i += 1;
            }
            "--scale" => {
                scale = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(scale);
                i += 1;
            }
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: repro [--seed N] [--scale N] [--json]");
                return;
            }
            _ => {}
        }
        i += 1;
    }
    let mut config = ScenarioConfig::repro_scale(seed);
    config.scale = scale;
    eprintln!(
        "running study: seed {seed}, scale 1:{scale} (≈{} users, {} simulated days)...",
        config.target_users(),
        config.total_days()
    );
    let report = StudyReport::run(config);
    println!("{}", report.render());
    if json {
        println!("{}", serde_json::to_string_pretty(&report.to_json()).expect("serialisable"));
    }
}
