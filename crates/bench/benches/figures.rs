//! One benchmark group per figure family of the paper.

use bsky_atproto::Datetime;
use bsky_study::{analysis, Collector, Datasets};
use bsky_workload::{ScenarioConfig, World};
use criterion::{criterion_group, criterion_main, Criterion};

fn collected() -> (World, Datasets) {
    let mut config = ScenarioConfig::test_scale(11);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 30_000;
    let mut world = World::new(config);
    let datasets = Collector::new().run(&mut world);
    (world, datasets)
}

fn figures(c: &mut Criterion) {
    let (world, datasets) = collected();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_fig2_activity_series", |b| {
        b.iter(|| analysis::activity_series(&datasets))
    });
    group.bench_function("fig3_identity_concentration", |b| {
        b.iter(|| analysis::identity_report(&datasets, &world))
    });
    group.bench_function("fig4_fig5_fig6_moderation", |b| {
        b.iter(|| analysis::moderation_report(&datasets, &world))
    });
    group.bench_function("fig7_to_fig12_recommendation", |b| {
        b.iter(|| analysis::recommendation_report(&datasets, &world))
    });
    group.bench_function("section9_firehose_volume", |b| {
        b.iter(|| analysis::firehose_volume(&datasets, &world))
    });
    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
