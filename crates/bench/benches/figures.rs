//! One benchmark group per figure family of the paper.

use bsky_atproto::Datetime;
use bsky_bench::BenchGroup;
use bsky_study::{analysis, Collector, Datasets};
use bsky_workload::{ScenarioConfig, World};

fn collected() -> (World, Datasets) {
    let mut config = ScenarioConfig::test_scale(11);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 30_000;
    let mut world = World::new(config);
    let datasets = Collector::new().run(&mut world);
    (world, datasets)
}

fn main() {
    let (world, datasets) = collected();
    let mut group = BenchGroup::new("figures");
    group.sample_size(10);
    group.bench_function("fig1_fig2_activity_series", || {
        analysis::activity_series(&datasets)
    });
    group.bench_function("fig3_identity_concentration", || {
        analysis::identity_report(&datasets, &world)
    });
    group.bench_function("fig4_fig5_fig6_moderation", || {
        analysis::moderation_report(&datasets, &world)
    });
    group.bench_function("fig7_to_fig12_recommendation", || {
        analysis::recommendation_report(&datasets, &world)
    });
    group.bench_function("section9_firehose_volume", || {
        analysis::firehose_volume(&datasets, &world)
    });
    group.finish();
}
