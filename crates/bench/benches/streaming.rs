//! Streaming vs batch study pipeline: wall-clock and retained-memory
//! comparison at repro-like scale.
//!
//! The batch path materializes every firehose event into a `Vec` and keeps
//! it alive until all seven analyses finish; the streaming path folds each
//! event into the incremental analyzers as it arrives and retains at most
//! one day's subscription batch. This bench measures both and prints the
//! retained-event counts side by side — the streaming peak must be strictly
//! lower than the batch retention.

use bsky_atproto::Datetime;
use bsky_bench::BenchGroup;
use bsky_study::{Collector, StudyReport};
use bsky_workload::{ScenarioConfig, World};

fn bench_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(17);
    config.start = Datetime::from_ymd(2024, 2, 1).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 30).unwrap();
    config.scale = 20_000;
    config
}

fn main() {
    let config = bench_config();
    let mut group = BenchGroup::new("streaming_vs_batch");
    group.sample_size(5);

    group.bench_function("batch_collect_then_analyze", || {
        StudyReport::run_batch(config)
    });
    group.bench_function("stream_single_pass", || StudyReport::run(config));
    group.finish();

    // Memory comparison: retained firehose events on each path.
    let mut world = World::new(config);
    let batch_retained = Collector::new().run(&mut world).firehose_events.len();
    let (_, summary) = StudyReport::run_streaming(config);
    println!(
        "retained events: batch {} vs streaming peak in-flight {}",
        batch_retained, summary.peak_in_flight_events
    );
    assert!(
        summary.peak_in_flight_events < batch_retained,
        "streaming must retain strictly fewer events than batch ({} vs {batch_retained})",
        summary.peak_in_flight_events
    );
    println!(
        "streaming retains {:.2} % of the batch path's event footprint",
        summary.peak_in_flight_events as f64 / batch_retained.max(1) as f64 * 100.0
    );
}
