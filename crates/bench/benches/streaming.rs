//! Streaming study pipeline benchmarks: serial vs sharded wall clock,
//! retained-memory bounds, and the machine-readable perf export.
//!
//! Measurements:
//!
//! * **serial vs sharded** — the same report computed on one thread vs four
//!   population shards on four worker threads. The report is byte-identical
//!   either way (pinned by `tests/pipeline_equivalence.rs`); this bench
//!   tracks the wall-clock ratio. On hardware with ≥ 4 CPUs the sharded run
//!   must be ≥ 2.5× faster; on smaller machines the ratio is only reported.
//! * **intra-shard pipeline** — the same 4×4 sharded run with `--pipeline
//!   --analyzer-threads 2`: each shard's producer ships owned observation
//!   batches over a bounded channel to analyzer workers so store I/O
//!   overlaps analyzer CPU. Byte-identical output (same golden pin); on
//!   ≥ 4 CPUs the pipelined run must be ≥ 1.15× faster than pipeline-off
//!   (exported as `pipelined4_ns_per_day` / `pipeline_speedup`).
//! * **bounded in-flight events** — the producer drains the relay in
//!   constant-size chunks, so the peak subscription batch must not scale
//!   with daily volume (asserted across a 3× population difference).
//! * **bounded moderation index** — the post-creation index is aged past
//!   the labelers' reaction window, so its peak stays a fraction of the
//!   total posts observed (asserted; this was the `--scale 100` ceiling).
//! * **snapshot traffic** — the §3 repositories dataset collected with
//!   rev-aware incremental syncs (`getRepo(since)` deltas) must fetch
//!   strictly fewer bytes than the window-end full refetch (asserted; both
//!   emit byte-identical snapshots).
//! * **paged block store** — the same collection with `--store paged`
//!   (repos, relay mirror and producer mirror over the disk-spill store)
//!   must end the run with strictly fewer resident block bytes than the
//!   in-memory store, with the difference spilled (asserted; the reports
//!   are byte-identical, pinned by the golden equivalence test).
//! * **paged AppView entity shards** — the same comparison for the
//!   AppView's own CBOR entity blocks (`--appview-shards 4 --store paged`
//!   vs the monolithic in-memory default): the sharded paged AppView must
//!   spill and end with strictly fewer resident bytes (asserted; exported
//!   as `appview_resident_bytes_{mem,paged}`).
//! * **MST prefix compression** — node blocks encode prefix-compressed
//!   entry keys; at a realistic tree size the structural bytes must beat
//!   the legacy full-key encoding (asserted).
//! * **relay federation** — the collection with the PDS fleet crawled by
//!   two regional relays forwarding into the super-relay over the paged
//!   store, at two population scales: resident block bytes per DID must
//!   shrink as the population grows (sublinear scale-out; asserted and
//!   exported as `bytes_per_did_{base,large}` / `ns_per_day_per_did_*`).
//! * **wire observatory** — the §10 traffic-analysis sweep: classifier
//!   accuracy and framing overhead with no mitigation vs 128-byte bucket
//!   padding, plus the active policy's wire accounting (bucket padding
//!   must cost strictly more overhead than bare framing; asserted and
//!   exported as `observer_accuracy_{none,bucketed}` /
//!   `padding_overhead_{none_,}bytes`).
//!
//! `--json` additionally writes `BENCH_streaming.json` next to the working
//! directory so the perf trajectory can be tracked across PRs. `--smoke`
//! (used by CI under `cargo bench -- --smoke`) runs every body once,
//! assertions included, without full measurement.

use bsky_atproto::Datetime;
use bsky_bench::{smoke_mode, BenchGroup};
use bsky_study::analysis::ModerationAnalyzer;
use bsky_study::json::Json;
use bsky_study::pipeline::{Analyzer, Observation, ObservationSink, StudyCtx};
use bsky_study::{Collector, RunSpec, SnapshotMode, StudyReport};
use bsky_workload::{ScenarioConfig, World, WorldSpec};

fn bench_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(17);
    config.start = Datetime::from_ymd(2024, 2, 1).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 30).unwrap();
    config.scale = 20_000;
    config
}

/// Streams a world through a lone `ModerationAnalyzer`, tracking its
/// post-index peak and the total number of posts seen.
struct IndexProbe {
    analyzer: ModerationAnalyzer,
    total_posts: usize,
}

impl ObservationSink for IndexProbe {
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        if let Observation::Firehose(event) = obs {
            if let bsky_atproto::firehose::EventBody::Commit { ops, .. } = &event.body {
                self.total_posts += ops
                    .iter()
                    .filter(|op| {
                        op.collection() == bsky_atproto::nsid::known::POST && op.cid.is_some()
                    })
                    .count();
            }
        }
        Analyzer::observe(&mut self.analyzer, obs, ctx);
    }
}

fn main() {
    let smoke = smoke_mode();
    let json = std::env::args().any(|a| a == "--json");
    let config = bench_config();
    let days = config.total_days().max(1) as u64;
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut group = BenchGroup::new("streaming");
    group.sample_size(5);

    // Wall clock: serial single pass vs 4 shards on 4 worker threads vs
    // the same sharded run with the intra-shard pipeline on (producer /
    // analyzer decoupling + 2 analyzer workers per shard).
    let serial_spec = RunSpec::new(config);
    let sharded_spec = RunSpec::new(config).shards(4).jobs(4);
    let pipelined_spec = RunSpec::new(config)
        .shards(4)
        .jobs(4)
        .pipeline(true)
        .analyzer_threads(2);
    let serial = group.measure("serial_single_pass", || {
        StudyReport::run_serial(&serial_spec)
    });
    let sharded = group.measure("sharded_4x4", || StudyReport::run(&sharded_spec));
    let pipelined = group.measure("pipelined_4x4", || StudyReport::run(&pipelined_spec));
    let speedup = serial.as_secs_f64() / sharded.as_secs_f64().max(1e-12);
    let pipeline_speedup = sharded.as_secs_f64() / pipelined.as_secs_f64().max(1e-12);
    println!(
        "sharded speedup: {speedup:.2}x over serial ({} CPU(s) available, {:.0} ns/day serial, {:.0} ns/day sharded)",
        parallelism,
        serial.as_nanos() as f64 / days as f64,
        sharded.as_nanos() as f64 / days as f64,
    );
    println!(
        "pipeline speedup: {pipeline_speedup:.2}x over pipeline-off sharded ({:.0} ns/day pipelined)",
        pipelined.as_nanos() as f64 / days as f64,
    );
    if !smoke && parallelism >= 4 {
        assert!(
            speedup >= 2.5,
            "sharded run must be >= 2.5x faster than serial on >=4 CPUs, got {speedup:.2}x"
        );
        assert!(
            pipeline_speedup >= 1.15,
            "pipelined run must be >= 1.15x faster than pipeline-off on >=4 CPUs, got {pipeline_speedup:.2}x"
        );
    }

    // Memory: with a fixed chunk size, peak in-flight events must not scale
    // with daily volume — the producer crawls once a chunk's worth of relay
    // events is pending, so the subscription batch is bounded by the chunk
    // plus one user's commit burst no matter how heavy the day is.
    const CHUNK: usize = 32;
    struct NullSink;
    impl ObservationSink for NullSink {
        fn observe(&mut self, _obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {}
    }
    let base_summary = {
        let mut world = World::new(config);
        Collector::with_chunk_size(CHUNK).stream(&mut world, &mut NullSink)
    };
    let mut large_config = config;
    large_config.scale = 6_000; // ≈3.3× the population ⇒ ≈3× daily volume
    let large_summary = {
        let mut world = World::new(large_config);
        Collector::with_chunk_size(CHUNK).stream(&mut world, &mut NullSink)
    };
    println!(
        "events streamed: {} (base) vs {} (3x volume); peak in-flight {} vs {} (chunk {})",
        base_summary.firehose_events,
        large_summary.firehose_events,
        base_summary.peak_in_flight_events,
        large_summary.peak_in_flight_events,
        CHUNK,
    );
    assert!(
        large_summary.firehose_events > base_summary.firehose_events * 2,
        "volume scaling sanity: {} vs {}",
        large_summary.firehose_events,
        base_summary.firehose_events
    );
    // The hard invariant is the absolute bound: chunk size plus one day's
    // signup/activation burst, regardless of volume. The ratio check only
    // guards against accidental proportional growth (3× volume must not
    // mean 3× peak).
    assert!(
        large_summary.peak_in_flight_events < CHUNK + 64,
        "peak in-flight must be bounded by the chunk size, got {}",
        large_summary.peak_in_flight_events
    );
    let peak_ratio = large_summary.peak_in_flight_events as f64
        / base_summary.peak_in_flight_events.max(1) as f64;
    assert!(
        peak_ratio < 2.5,
        "peak in-flight must be volume-independent (chunked day steps); ratio {peak_ratio:.2}"
    );
    assert!(
        (base_summary.peak_in_flight_events as u64) < base_summary.firehose_events,
        "streaming must retain strictly fewer events than the batch path"
    );

    // Traffic: the §3 repositories dataset, full-refetch vs rev-aware
    // incremental syncs. Both emit byte-identical snapshots (pinned by the
    // golden equivalence test); this measures the bytes actually fetched.
    let full_snap = {
        let mut world = World::new(config);
        Collector::new()
            .snapshot_mode(SnapshotMode::FullRefetch)
            .stream(&mut world, &mut NullSink)
    };
    let inc_snap = {
        let mut world = World::new(config);
        Collector::new()
            .snapshot_mode(SnapshotMode::Incremental)
            .stream(&mut world, &mut NullSink)
    };
    println!(
        "repo snapshots: {} bytes full-refetch vs {} bytes incremental ({:.1} %; {} full + {} delta fetches, {} skips)",
        full_snap.snapshot_bytes_fetched,
        inc_snap.snapshot_bytes_fetched,
        inc_snap.snapshot_bytes_fetched as f64 / full_snap.snapshot_bytes_fetched.max(1) as f64
            * 100.0,
        inc_snap.repo_full_fetches,
        inc_snap.repo_delta_fetches,
        inc_snap.repo_snapshot_skips,
    );
    assert!(
        inc_snap.repo_delta_fetches > 0,
        "incremental mode must exercise the getRepo(since) delta path"
    );
    assert!(
        inc_snap.snapshot_bytes_fetched < full_snap.snapshot_bytes_fetched,
        "incremental snapshots must fetch strictly fewer bytes ({} vs {})",
        inc_snap.snapshot_bytes_fetched,
        full_snap.snapshot_bytes_fetched,
    );

    // Storage: the same run over the in-memory vs the paged disk-spill
    // block store — the paged run with the NUMA-scale AppView layout (4
    // entity shards). The paged backend must end the window with strictly
    // fewer resident block bytes — the rest spilled to disk — while the
    // golden test pins the reports byte-identical; the AppView's own
    // entity blocks are tracked separately so its ceiling is visible in
    // the trajectory.
    use bsky_atproto::blockstore::StoreConfig;
    let run_with_store = |store: StoreConfig, appview_shards: usize| {
        let mut world = World::from_spec(
            WorldSpec::new(config)
                .store(store.clone())
                .appview_shards(appview_shards),
        );
        let summary = Collector::new()
            .store(store)
            .stream(&mut world, &mut NullSink);
        (summary, world.appview_store_stats())
    };
    let (mem_store, mem_appview) = run_with_store(StoreConfig::mem(), 1);
    let (paged_store, paged_appview) = run_with_store(
        StoreConfig::paged().page_size(8 * 1024).resident_pages(2),
        4,
    );
    println!(
        "block store: {} bytes resident (mem) vs {} resident + {} spilled (paged); {} reclaimed by compaction",
        mem_store.resident_block_bytes,
        paged_store.resident_block_bytes,
        paged_store.spilled_block_bytes,
        paged_store.store_bytes_reclaimed,
    );
    println!(
        "appview entity blocks: {} bytes resident (mem, 1 shard) vs {} resident + {} spilled (paged, 4 shards)",
        mem_appview.resident_bytes, paged_appview.resident_bytes, paged_appview.spilled_bytes,
    );
    assert!(
        paged_store.spilled_block_bytes > 0,
        "the paged store must actually spill at bench scale"
    );
    assert!(
        paged_store.resident_block_bytes < mem_store.resident_block_bytes,
        "paged resident bytes ({}) must be strictly below mem ({})",
        paged_store.resident_block_bytes,
        mem_store.resident_block_bytes,
    );
    assert!(
        paged_appview.spilled_bytes > 0,
        "the sharded paged AppView must actually spill at bench scale"
    );
    assert!(
        paged_appview.resident_bytes < mem_appview.resident_bytes,
        "paged appview resident bytes ({}) must be strictly below mem ({})",
        paged_appview.resident_bytes,
        mem_appview.resident_bytes,
    );
    assert!(
        mem_store.store_bytes_reclaimed > 0,
        "the weekly compaction pass must reclaim history"
    );

    // Hot/cold split + write-back cache: same-day counter bumps must
    // coalesce into single counter-block writes, and the write-back buffer
    // must absorb repeat touches before the day-boundary flush. The golden
    // test pins the reports byte-identical with the cache on vs off; this
    // leg tracks how much write traffic the cache actually saves.
    let writeback_hit_rate = mem_store.writeback_hits as f64
        / (mem_store.writeback_hits + mem_store.writeback_misses).max(1) as f64;
    println!(
        "write-back cache: {} counter write(s) coalesced, {} flush(es), {:.1} % buffer hit rate ({} hits / {} misses)",
        mem_store.counter_coalesced_writes,
        mem_store.writeback_flushes,
        writeback_hit_rate * 100.0,
        mem_store.writeback_hits,
        mem_store.writeback_misses,
    );
    assert!(
        mem_store.counter_coalesced_writes > 0,
        "the hot/cold split must coalesce counter writes at bench scale"
    );
    assert!(
        mem_store.writeback_flushes > 0 && mem_store.writeback_hits > 0,
        "the write-back cache must buffer and flush dirty entities at bench scale"
    );

    // Wire: MST node entries are prefix-compressed; measure the structural
    // bytes against the legacy full-key encoding at a realistic tree size.
    let (mst_compressed, mst_uncompressed) = {
        use bsky_atproto::cid::Cid;
        use bsky_atproto::mst::Mst;
        let mut mst = Mst::new();
        for user in 0..40 {
            for day in 0..50 {
                let key = format!("app.bsky.feed.post/u{user:03}d{day:05}");
                mst.insert(&key, Cid::for_cbor(key.as_bytes())).unwrap();
            }
        }
        (mst.structural_size(), mst.structural_size_uncompressed())
    };
    println!(
        "mst structural bytes: {} prefix-compressed vs {} legacy ({:.1} %)",
        mst_compressed,
        mst_uncompressed,
        mst_compressed as f64 / mst_uncompressed.max(1) as f64 * 100.0,
    );
    assert!(
        mst_compressed < mst_uncompressed,
        "prefix compression must shrink node blocks ({mst_compressed} vs {mst_uncompressed})"
    );

    // Memory: the moderation post index is aged past the reaction window.
    let mut world = World::new(config);
    let mut probe = IndexProbe {
        analyzer: ModerationAnalyzer::new(),
        total_posts: 0,
    };
    Collector::new().stream(&mut world, &mut probe);
    println!(
        "moderation post index: peak {} of {} posts observed ({:.1} %)",
        probe.analyzer.peak_post_index(),
        probe.total_posts,
        probe.analyzer.peak_post_index() as f64 / probe.total_posts.max(1) as f64 * 100.0,
    );
    assert!(probe.total_posts > 0);
    assert!(
        probe.analyzer.peak_post_index() <= probe.total_posts * 6 / 10,
        "post index must be aged out (peak {} vs {} posts)",
        probe.analyzer.peak_post_index(),
        probe.total_posts
    );

    // Observatory: one framed run (128-byte buckets, 2 s batch windows)
    // yields both the §10 mitigation sweep — computed counterfactually from
    // the raw captures, so it matches every other run of this config — and
    // the active policy's wire accounting in the summary.
    use bsky_atproto::framing::{FramingPolicy, PaddingPolicy};
    let framed_spec = RunSpec::new(config).framing(FramingPolicy::new(PaddingPolicy::Buckets, 2));
    let (framed_report, framed_summary) = StudyReport::run(&framed_spec);
    let observatory = &framed_report.observatory;
    let accuracy_none = observatory.cell_accuracy("none").unwrap_or(0.0);
    let accuracy_bucketed = observatory.cell_accuracy("pad128").unwrap_or(0.0);
    let overhead_none = observatory.cell_overhead("none").unwrap_or(0);
    let overhead_bucketed = observatory.cell_overhead("pad128").unwrap_or(0);
    println!(
        "observatory: {:.1}% classifier accuracy unmitigated vs {:.1}% under pad128 (chance {:.1}%); framing overhead {} bytes unmitigated vs {} pad128; active wire overhead {} bytes on {} frames",
        accuracy_none * 100.0,
        accuracy_bucketed * 100.0,
        observatory.chance_accuracy * 100.0,
        overhead_none,
        overhead_bucketed,
        framed_summary.merged.padding_overhead_bytes,
        framed_summary.merged.wire_frames,
    );
    assert!(
        observatory.traced_days > 0,
        "the wire tap must capture traces at bench scale"
    );
    assert!(
        overhead_bucketed > overhead_none,
        "bucket padding must cost strictly more overhead than bare framing ({overhead_bucketed} vs {overhead_none})"
    );
    assert!(
        framed_summary.merged.padding_overhead_bytes > 0 && framed_summary.merged.wire_frames > 0,
        "the active bucketed policy must account overhead on the producer's wire"
    );

    // Chaos: one combined fault scenario (host outage + mass migration,
    // flaky fetches, a label storm, cursor gaps) through the faulted
    // terminal. The golden tests pin faulted reports byte-identical serial
    // vs sharded and mem vs paged; this leg tracks the *recovery* costs —
    // retries, backfill full fetches, storm volume — in the trajectory and
    // asserts the never-silent contract: injected faults must surface as
    // nonzero named counters.
    use bsky_study::faults::FaultSpec;
    let chaos_spec = FaultSpec {
        outage_day: Some(0.5),
        flaky_fetch: 0.3,
        label_storm_day: Some(0.6),
        label_storm_prob: 0.5,
        cursor_gap: 0.05,
        ..FaultSpec::default()
    };
    let chaos_run = RunSpec::new(config).faults(chaos_spec).scenario("chaos");
    let (_, chaos_summary) = StudyReport::run(&chaos_run);
    let chaos = &chaos_summary.merged;
    println!(
        "chaos scenario: {} retries ({} ms simulated backoff, {} give-ups), {} outage migrations, {} backfill full fetches, {} storm labels, {} gap drops",
        chaos.retry_attempts,
        chaos.retry_backoff_ms,
        chaos.fetch_retry_giveups,
        chaos.outage_migrations,
        chaos.backfill_full_fetches,
        chaos.storm_labels_applied,
        chaos.cursor_gap_drops,
    );
    assert!(
        chaos.retry_attempts > 0,
        "flaky fetches must surface as counted retries"
    );
    assert!(
        chaos.outage_migrations > 0 && chaos.backfill_full_fetches > 0,
        "the outage must migrate accounts and force counted backfills"
    );
    assert!(
        chaos.storm_labels_applied > 0,
        "the label storm must apply counted labels"
    );
    assert!(
        chaos.cursor_gap_drops > 0,
        "cursor gaps must surface as counted drops"
    );

    // Federation: the same collection with the PDS fleet crawled by two
    // regional relays forwarding (cursor-resumable, (did, rev)-dedup'd)
    // into the super-relay, over the paged store, at the base and ≈3.3×
    // populations. Residency is LRU-bounded rather than population-bound,
    // so resident block bytes *per DID* must shrink as the population
    // grows — the sublinear scale-out story bench-compare pins as a
    // structural win (`bytes_per_did_{base,large}`); wall clock per day
    // per DID rides along in the export.
    let federated_run = |config: ScenarioConfig| {
        let store = StoreConfig::paged().page_size(8 * 1024).resident_pages(2);
        let mut world = World::from_spec(WorldSpec::new(config).store(store.clone()).relays(2));
        let started = std::time::Instant::now();
        let summary = Collector::new()
            .store(store)
            .stream(&mut world, &mut NullSink);
        let elapsed = started.elapsed();
        let population = world.users.len().max(1) as u64;
        assert!(
            summary.relay_events_forwarded > 0 && summary.relay_dedup_tracked > 0,
            "federated run must forward through the super-relay"
        );
        assert_eq!(
            summary.relay_duplicates_dropped, 0,
            "clean partitions must produce zero duplicates"
        );
        let bytes_per_did = summary.resident_block_bytes as f64 / population as f64;
        let ns_per_day_per_did = elapsed.as_nanos() as f64 / days as f64 / population as f64;
        (population, bytes_per_did, ns_per_day_per_did)
    };
    let (population_base, bytes_per_did_base, ns_per_day_per_did_base) = federated_run(config);
    let (population_large, bytes_per_did_large, ns_per_day_per_did_large) =
        federated_run(large_config);
    println!(
        "federation (2 relays, paged): {bytes_per_did_base:.1} resident bytes/DID at {population_base} DIDs vs {bytes_per_did_large:.1} at {population_large} ({ns_per_day_per_did_base:.0} / {ns_per_day_per_did_large:.0} ns/day/DID)",
    );
    assert!(
        population_large > population_base * 2,
        "population scaling sanity: {population_large} vs {population_base}"
    );
    assert!(
        bytes_per_did_large < bytes_per_did_base,
        "per-DID residency must shrink with population (sublinear scale-out): {bytes_per_did_large:.1} vs {bytes_per_did_base:.1}"
    );

    group.finish();

    if json {
        let out = Json::object()
            .with("bench", "streaming")
            .with("smoke", smoke)
            .with("parallelism", parallelism as u64)
            .with("events_streamed", base_summary.firehose_events)
            .with("peak_in_flight", base_summary.peak_in_flight_events as u64)
            .with(
                "peak_in_flight_3x_volume",
                large_summary.peak_in_flight_events as u64,
            )
            .with(
                "moderation_peak_post_index",
                probe.analyzer.peak_post_index() as u64,
            )
            .with("moderation_total_posts", probe.total_posts as u64)
            .with(
                "snapshot_bytes_fetched_full",
                full_snap.snapshot_bytes_fetched,
            )
            .with(
                "snapshot_bytes_fetched_incremental",
                inc_snap.snapshot_bytes_fetched,
            )
            .with("snapshot_full_fetches", inc_snap.repo_full_fetches)
            .with("snapshot_delta_fetches", inc_snap.repo_delta_fetches)
            .with("resident_block_bytes_mem", mem_store.resident_block_bytes)
            .with(
                "resident_block_bytes_paged",
                paged_store.resident_block_bytes,
            )
            .with("spilled_bytes_paged", paged_store.spilled_block_bytes)
            .with(
                "appview_resident_bytes_mem",
                mem_appview.resident_bytes as u64,
            )
            .with(
                "appview_resident_bytes_paged",
                paged_appview.resident_bytes as u64,
            )
            .with(
                "appview_spilled_bytes_paged",
                paged_appview.spilled_bytes as u64,
            )
            .with(
                "compaction_bytes_reclaimed",
                mem_store.store_bytes_reclaimed,
            )
            .with("mst_structural_bytes", mst_compressed as u64)
            .with("mst_structural_bytes_uncompressed", mst_uncompressed as u64)
            .with("padding_overhead_none_bytes", overhead_none)
            .with("padding_overhead_bytes", overhead_bucketed)
            .with("observer_accuracy_none", accuracy_none)
            .with("observer_accuracy_bucketed", accuracy_bucketed)
            .with("observer_chance_accuracy", observatory.chance_accuracy)
            .with(
                "counter_coalesced_writes",
                mem_store.counter_coalesced_writes,
            )
            .with("writeback_flushes", mem_store.writeback_flushes)
            .with("writeback_hit_rate", writeback_hit_rate)
            .with("retry_attempts", chaos.retry_attempts)
            .with("retry_backoff_ms", chaos.retry_backoff_ms)
            .with("backfill_full_fetches", chaos.backfill_full_fetches)
            .with("outage_migrations", chaos.outage_migrations)
            .with("label_storm_peak", chaos.storm_labels_applied)
            .with("cursor_gap_drops", chaos.cursor_gap_drops)
            .with("federated_population_base", population_base)
            .with("federated_population_large", population_large)
            .with("bytes_per_did_base", bytes_per_did_base)
            .with("bytes_per_did_large", bytes_per_did_large)
            .with("ns_per_day_per_did_base", ns_per_day_per_did_base)
            .with("ns_per_day_per_did_large", ns_per_day_per_did_large)
            .with("serial_ns_per_day", serial.as_nanos() as u64 / days)
            .with("sharded4_ns_per_day", sharded.as_nanos() as u64 / days)
            .with("sharded_speedup", speedup)
            .with("pipelined4_ns_per_day", pipelined.as_nanos() as u64 / days)
            .with("pipeline_speedup", pipeline_speedup);
        // Benches run with the package as cwd; anchor the export at the
        // workspace root so the trajectory file has a stable path.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
        std::fs::write(path, out.to_string_pretty()).expect("write BENCH_streaming.json");
        println!("wrote {path}");
    }
}
