//! End-to-end pipeline benchmarks: simulation, collection, and the protocol
//! substrate's hot paths (repo commits, CAR export, firehose frames).

use bsky_atproto::nsid::known;
use bsky_atproto::record::{PostRecord, Record};
use bsky_atproto::repo::Repository;
use bsky_atproto::{Datetime, Did, Nsid};
use bsky_bench::BenchGroup;
use bsky_study::Collector;
use bsky_workload::{ScenarioConfig, World};

fn main() {
    let mut group = BenchGroup::new("pipeline");
    group.sample_size(10);

    group.bench_function("simulate_and_collect_60_days_tiny", || {
        let mut config = ScenarioConfig::test_scale(3);
        config.start = Datetime::from_ymd(2024, 3, 1).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 30).unwrap();
        config.scale = 60_000;
        let mut world = World::new(config);
        Collector::new().run(&mut world)
    });

    group.bench_function("repo_commit_and_car_export_100_posts", || {
        let mut repo = Repository::new(Did::plc_from_seed(b"bench"), b"seed");
        let now = Datetime::from_ymd(2024, 4, 1).unwrap();
        for i in 0..100 {
            repo.create_record(
                Nsid::parse(known::POST).unwrap(),
                Record::Post(PostRecord::simple(format!("post {i}"), "en", now)),
                now,
            )
            .unwrap();
        }
        repo.export_car()
    });

    let event = bsky_atproto::firehose::Event {
        seq: 1,
        time: Datetime::from_ymd(2024, 4, 1).unwrap(),
        body: bsky_atproto::firehose::EventBody::Identity {
            did: Did::plc_from_seed(b"bench"),
        },
    };
    group.bench_function("firehose_frame_roundtrip", || {
        bsky_atproto::firehose::Event::decode(&event.encode()).unwrap()
    });

    group.finish();
}
