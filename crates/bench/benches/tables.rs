//! One benchmark group per table of the paper: each measures regenerating the
//! table's rows from an already-collected dataset.

use bsky_atproto::Datetime;
use bsky_bench::BenchGroup;
use bsky_study::{analysis, Collector, Datasets};
use bsky_workload::{ScenarioConfig, World};

fn bench_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(7);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 30_000;
    config
}

fn collected() -> (World, Datasets) {
    let mut world = World::new(bench_config());
    let datasets = Collector::new().run(&mut world);
    (world, datasets)
}

fn main() {
    let (world, datasets) = collected();
    let mut group = BenchGroup::new("tables");
    group.sample_size(10);
    group.bench_function("table1_firehose_breakdown", || {
        analysis::table1_firehose_breakdown(&datasets)
    });
    group.bench_function("table2_registrars_section5", || {
        analysis::identity_report(&datasets, &world)
    });
    group.bench_function("table3_table4_table6_moderation", || {
        analysis::moderation_report(&datasets, &world)
    });
    group.bench_function("table5_feature_matrix", analysis::table5_feature_matrix);
    group.finish();
}
