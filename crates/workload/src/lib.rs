//! # bsky-workload
//!
//! The calibrated synthetic Bluesky ecosystem: population, growth epochs,
//! activity, identity churn, labeler and feed-generator ecosystems, and the
//! day-by-day simulation driver ([`world::World`]).
//!
//! All calibration constants come straight from the paper (see
//! [`config::paper`]); a `(seed, scale)` pair fully determines a run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ecosystem;
pub mod population;
pub mod world;

pub use config::ScenarioConfig;
pub use population::{did_hash, HandleChoice, PopulationPlan, ProofChoice, UserProfile};
pub use world::{DayCursor, FeedGenInfo, LabelerInfo, ShardSpec, World, WorldSpec};
