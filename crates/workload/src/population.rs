//! The synthetic user population.
//!
//! Each user is drawn with the attributes the study's analyses depend on:
//! language community (§4), handle choice — custodial `bsky.social`
//! subdomain, dedicated subdomain provider, or self-managed domain — with its
//! registrar and ownership-proof mechanism (§5), activity level (Zipf-like),
//! media/alt-text behaviour (the raw material for §6's labels), and whether
//! the account also uses third-party lexicons such as WhiteWind (§4).

use crate::config::{ScenarioConfig, LANGUAGE_SHARES};
use bsky_atproto::{Datetime, Did, Handle};
use bsky_simnet::SimRng;

/// How the user chose their handle (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandleChoice {
    /// Custodial `<name>.bsky.social` subdomain managed by Bluesky PBC.
    BskySocial,
    /// A subdomain under a dedicated third-party provider
    /// (`swifties.social`, `tired.io`, `vibes.cool`, `github.io`, ...).
    ProviderSubdomain {
        /// The provider's registered domain.
        provider: String,
    },
    /// A self-managed registered domain.
    SelfManaged {
        /// The registered domain.
        domain: String,
        /// Index into the registrar catalogue, or `None` when WHOIS data is
        /// unavailable for this domain.
        registrar_index: Option<usize>,
        /// Whether the domain appears in the synthetic Tranco top-1M.
        in_tranco_top1m: bool,
    },
}

/// Ownership-proof mechanism for non-custodial handles (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofChoice {
    /// DNS TXT record at `_atproto.<handle>` (98.7 % of custom handles).
    DnsTxt,
    /// `/.well-known/atproto-did` document (1.3 %).
    WellKnown,
}

/// Dedicated subdomain providers observed in Figure 3, with relative weights.
pub const SUBDOMAIN_PROVIDERS: &[(&str, f64)] = &[
    ("swifties.social", 256.0),
    ("tired.io", 179.0),
    ("vibes.cool", 133.0),
    ("github.io", 35.0),
    ("skyna.me", 90.0),
    ("bsky.cafe", 60.0),
    ("deer.social", 45.0),
    ("fediverse.observer", 25.0),
];

/// A member of the synthetic population.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Stable per-run index.
    pub index: usize,
    /// The user's DID (`did:plc` for all but a handful of `did:web` users).
    pub did: Did,
    /// The user's handle.
    pub handle: Handle,
    /// How the handle was chosen.
    pub handle_choice: HandleChoice,
    /// Ownership proof (only meaningful for non-custodial handles).
    pub proof: ProofChoice,
    /// Primary posting language.
    pub language: String,
    /// The day the account joined.
    pub joined: Datetime,
    /// Relative activity weight (Zipf-distributed; rank 1 is the most
    /// active/popular account).
    pub activity_weight: f64,
    /// Probability that a post carries media.
    pub media_probability: f64,
    /// Probability that attached media is missing alt text.
    pub missing_alt_probability: f64,
    /// Probability that a post with media is adult content.
    pub adult_probability: f64,
    /// Whether the user also publishes third-party (WhiteWind) records.
    pub uses_whitewind: bool,
}

impl UserProfile {
    /// Whether the user has a custodial bsky.social handle.
    pub fn is_bsky_social(&self) -> bool {
        matches!(self.handle_choice, HandleChoice::BskySocial)
    }
}

/// Draw a language according to the calibrated shares.
pub fn draw_language(rng: &mut SimRng) -> String {
    let weights: Vec<f64> = LANGUAGE_SHARES.iter().map(|(_, w)| *w).collect();
    let idx = rng.pick_weighted(&weights).unwrap_or(0);
    LANGUAGE_SHARES[idx].0.to_string()
}

/// Synthesise a username from an index (deterministic, readable, unique).
pub fn username(index: usize) -> String {
    const ADJECTIVES: &[&str] = &[
        "blue",
        "quiet",
        "rapid",
        "lunar",
        "amber",
        "cosmic",
        "gentle",
        "vivid",
        "silver",
        "wandering",
    ];
    const NOUNS: &[&str] = &[
        "skylark", "otter", "comet", "harbor", "meadow", "pixel", "raven", "willow", "ember",
        "drift",
    ];
    format!(
        "{}{}{}",
        ADJECTIVES[index % ADJECTIVES.len()],
        NOUNS[(index / ADJECTIVES.len()) % NOUNS.len()],
        index
    )
}

/// Synthesise a registered domain for a self-managed handle. A small share
/// are well-known organisation domains (in the Tranco top-1M).
pub fn self_managed_domain(index: usize, rng: &mut SimRng) -> (String, bool) {
    const FAMOUS: &[&str] = &[
        "nytimes.com",
        "washingtonpost.com",
        "cnn.com",
        "stanford.edu",
        "columbia.edu",
        "microsoft.com",
        "cloudflare.com",
        "amazonaws.com",
        "theguardian.com",
        "bbc.co.uk",
    ];
    // ≈2.8 % of registered domains behind handles are in the top-1M (§5).
    if rng.chance(0.028) {
        ((*rng.pick(FAMOUS)).to_string(), true)
    } else {
        const TLDS: &[&str] = &[
            "com", "net", "org", "io", "dev", "me", "social", "de", "jp", "com.br",
        ];
        let tld = TLDS[index % TLDS.len()];
        (format!("{}.{tld}", username(index)), false)
    }
}

/// Draw a user profile.
pub fn draw_user(
    index: usize,
    joined: Datetime,
    config: &ScenarioConfig,
    rng: &mut SimRng,
    registrar_count: usize,
) -> UserProfile {
    let language = draw_language(rng);
    let name = username(index);

    // Handle choice: 98.9 % custodial; the remainder split between dedicated
    // subdomain providers and self-managed domains.
    let (handle, handle_choice, did) = if rng.chance(0.989) {
        let handle = Handle::parse(&format!("{name}.bsky.social")).expect("valid handle");
        (
            handle,
            HandleChoice::BskySocial,
            Did::plc_from_seed(name.as_bytes()),
        )
    } else if rng.chance(0.5) {
        let weights: Vec<f64> = SUBDOMAIN_PROVIDERS.iter().map(|(_, w)| *w).collect();
        let provider = SUBDOMAIN_PROVIDERS[rng.pick_weighted(&weights).unwrap_or(0)].0;
        let handle = Handle::parse(&format!("{name}.{provider}")).expect("valid handle");
        (
            handle,
            HandleChoice::ProviderSubdomain {
                provider: provider.to_string(),
            },
            Did::plc_from_seed(name.as_bytes()),
        )
    } else {
        let (domain, in_tranco) = self_managed_domain(index, rng);
        // WHOIS coverage: ~92 % of registered domains have WHOIS data and
        // ~76 % have an IANA ID; domains without either get `None`.
        let registrar_index = if rng.chance(0.83) {
            Some(rng.range(0..registrar_count.max(1)))
        } else {
            None
        };
        let handle = Handle::parse(&domain).expect("valid handle");
        // A handful of identities (6 on the live network) use did:web.
        let did = if index < (config.scaled(6)).max(1) as usize && !in_tranco {
            Did::web(&domain).unwrap_or_else(|_| Did::plc_from_seed(name.as_bytes()))
        } else {
            Did::plc_from_seed(name.as_bytes())
        };
        (
            handle,
            HandleChoice::SelfManaged {
                domain,
                registrar_index,
                in_tranco_top1m: in_tranco,
            },
            did,
        )
    };

    let proof = if rng.chance(0.987) {
        ProofChoice::DnsTxt
    } else {
        ProofChoice::WellKnown
    };

    // Activity weight: Zipf over the population, so a few accounts are very
    // popular/active (the official account, newspapers, ...) and most are
    // quiet.
    let rank = rng.zipf(config.target_users().max(2), 1.05);
    let activity_weight = 1.0 / (rank as f64).powf(0.6);

    // Media behaviour varies by community: the art-heavy communities attach
    // more media; Japanese-language posts attach fewer alt texts on average
    // (these drive the relative label volumes of Table 6).
    let media_probability = match language.as_str() {
        "ja" => 0.38,
        "en" => 0.30,
        _ => 0.25,
    };
    let missing_alt_probability = 0.62;
    let adult_probability = 0.10;

    UserProfile {
        index,
        did,
        handle,
        handle_choice,
        proof,
        language,
        joined,
        activity_weight,
        media_probability,
        missing_alt_probability,
        adult_probability,
        uses_whitewind: rng.chance(0.0005),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_many(n: usize) -> Vec<UserProfile> {
        let config = ScenarioConfig::test_scale(3);
        let mut rng = SimRng::new(3).fork("population");
        let joined = Datetime::from_ymd(2023, 7, 1).unwrap();
        (0..n)
            .map(|i| draw_user(i, joined, &config, &mut rng, 249))
            .collect()
    }

    #[test]
    fn usernames_and_dids_are_unique() {
        let users = draw_many(2_000);
        let mut handles: Vec<&str> = users.iter().map(|u| u.handle.as_str()).collect();
        handles.sort();
        let before = handles.len();
        handles.dedup();
        // Handles are unique except famous self-managed domains, which can
        // repeat (several staff accounts under one newsroom domain).
        assert!(before - handles.len() < 20);
        let mut dids: Vec<String> = users.iter().map(|u| u.did.to_string()).collect();
        dids.sort();
        dids.dedup();
        assert!(dids.len() >= before - 20);
    }

    #[test]
    fn handle_concentration_matches_calibration() {
        let users = draw_many(5_000);
        let custodial = users.iter().filter(|u| u.is_bsky_social()).count();
        let share = custodial as f64 / users.len() as f64;
        assert!((0.975..0.998).contains(&share), "bsky.social share {share}");
        // Some users chose provider subdomains and some self-managed domains.
        assert!(users
            .iter()
            .any(|u| matches!(u.handle_choice, HandleChoice::ProviderSubdomain { .. })));
        assert!(users
            .iter()
            .any(|u| matches!(u.handle_choice, HandleChoice::SelfManaged { .. })));
    }

    #[test]
    fn proof_mechanism_split() {
        let users = draw_many(5_000);
        let txt = users
            .iter()
            .filter(|u| u.proof == ProofChoice::DnsTxt)
            .count();
        let share = txt as f64 / users.len() as f64;
        assert!(share > 0.96, "DNS TXT share {share}");
    }

    #[test]
    fn language_distribution_roughly_matches() {
        let users = draw_many(8_000);
        let en = users.iter().filter(|u| u.language == "en").count() as f64 / users.len() as f64;
        let ja = users.iter().filter(|u| u.language == "ja").count() as f64 / users.len() as f64;
        let pt = users.iter().filter(|u| u.language == "pt").count() as f64 / users.len() as f64;
        assert!((0.33..0.47).contains(&en), "en share {en}");
        assert!((0.28..0.42).contains(&ja), "ja share {ja}");
        assert!((0.06..0.15).contains(&pt), "pt share {pt}");
        assert!(en > ja, "English remains the largest community");
    }

    #[test]
    fn activity_weights_are_heavy_tailed() {
        let users = draw_many(5_000);
        let mut weights: Vec<f64> = users.iter().map(|u| u.activity_weight).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_decile: f64 = weights[..500].iter().sum();
        let total: f64 = weights.iter().sum();
        assert!(
            top_decile / total > 0.25,
            "top decile share {}",
            top_decile / total
        );
        assert!(weights.iter().all(|w| *w > 0.0 && *w <= 1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = draw_many(100);
        let b = draw_many(100);
        assert_eq!(a, b);
    }

    #[test]
    fn some_users_are_whitewind_authors_at_large_n() {
        let users = draw_many(10_000);
        let ww = users.iter().filter(|u| u.uses_whitewind).count();
        assert!(ww >= 1, "expected at least one WhiteWind user");
        assert!(ww < 30, "WhiteWind adoption must stay marginal, got {ww}");
    }
}
