//! The synthetic user population.
//!
//! Each user is drawn with the attributes the study's analyses depend on:
//! language community (§4), handle choice — custodial `bsky.social`
//! subdomain, dedicated subdomain provider, or self-managed domain — with its
//! registrar and ownership-proof mechanism (§5), activity level (Zipf-like),
//! media/alt-text behaviour (the raw material for §6's labels), and whether
//! the account also uses third-party lexicons such as WhiteWind (§4).

use crate::config::{ScenarioConfig, GROWTH_EPOCHS, LANGUAGE_SHARES};
use bsky_atproto::nsid::known;
use bsky_atproto::{AtUri, Datetime, Did, Handle, Nsid};
use bsky_simnet::SimRng;

/// How the user chose their handle (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandleChoice {
    /// Custodial `<name>.bsky.social` subdomain managed by Bluesky PBC.
    BskySocial,
    /// A subdomain under a dedicated third-party provider
    /// (`swifties.social`, `tired.io`, `vibes.cool`, `github.io`, ...).
    ProviderSubdomain {
        /// The provider's registered domain.
        provider: String,
    },
    /// A self-managed registered domain.
    SelfManaged {
        /// The registered domain.
        domain: String,
        /// Index into the registrar catalogue, or `None` when WHOIS data is
        /// unavailable for this domain. Informational: the world derives
        /// the authoritative WHOIS record from the *domain* (see
        /// `world::whois_registrar_for`) so shared domains resolve
        /// identically on every shard.
        registrar_index: Option<usize>,
        /// Whether the domain appears in the synthetic Tranco top-1M.
        in_tranco_top1m: bool,
    },
}

/// Ownership-proof mechanism for non-custodial handles (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofChoice {
    /// DNS TXT record at `_atproto.<handle>` (98.7 % of custom handles).
    DnsTxt,
    /// `/.well-known/atproto-did` document (1.3 %).
    WellKnown,
}

/// Dedicated subdomain providers observed in Figure 3, with relative weights.
pub const SUBDOMAIN_PROVIDERS: &[(&str, f64)] = &[
    ("swifties.social", 256.0),
    ("tired.io", 179.0),
    ("vibes.cool", 133.0),
    ("github.io", 35.0),
    ("skyna.me", 90.0),
    ("bsky.cafe", 60.0),
    ("deer.social", 45.0),
    ("fediverse.observer", 25.0),
];

/// A member of the synthetic population.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Stable per-run index.
    pub index: usize,
    /// The user's DID (`did:plc` for all but a handful of `did:web` users).
    pub did: Did,
    /// The user's handle.
    pub handle: Handle,
    /// How the handle was chosen.
    pub handle_choice: HandleChoice,
    /// Ownership proof (only meaningful for non-custodial handles).
    pub proof: ProofChoice,
    /// Primary posting language.
    pub language: String,
    /// The day the account joined.
    pub joined: Datetime,
    /// Relative activity weight (Zipf-distributed; rank 1 is the most
    /// active/popular account).
    pub activity_weight: f64,
    /// Probability that a post carries media.
    pub media_probability: f64,
    /// Probability that attached media is missing alt text.
    pub missing_alt_probability: f64,
    /// Probability that a post with media is adult content.
    pub adult_probability: f64,
    /// Whether the user also publishes third-party (WhiteWind) records.
    pub uses_whitewind: bool,
}

impl UserProfile {
    /// Whether the user has a custodial bsky.social handle.
    pub fn is_bsky_social(&self) -> bool {
        matches!(self.handle_choice, HandleChoice::BskySocial)
    }
}

/// Draw a language according to the calibrated shares.
pub fn draw_language(rng: &mut SimRng) -> String {
    let weights: Vec<f64> = LANGUAGE_SHARES.iter().map(|(_, w)| *w).collect();
    let idx = rng.pick_weighted(&weights).unwrap_or(0);
    LANGUAGE_SHARES[idx].0.to_string()
}

/// Synthesise a username from an index (deterministic, readable, unique).
pub fn username(index: usize) -> String {
    const ADJECTIVES: &[&str] = &[
        "blue",
        "quiet",
        "rapid",
        "lunar",
        "amber",
        "cosmic",
        "gentle",
        "vivid",
        "silver",
        "wandering",
    ];
    const NOUNS: &[&str] = &[
        "skylark", "otter", "comet", "harbor", "meadow", "pixel", "raven", "willow", "ember",
        "drift",
    ];
    format!(
        "{}{}{}",
        ADJECTIVES[index % ADJECTIVES.len()],
        NOUNS[(index / ADJECTIVES.len()) % NOUNS.len()],
        index
    )
}

/// Synthesise a registered domain for a self-managed handle. A small share
/// are well-known organisation domains (in the Tranco top-1M).
pub fn self_managed_domain(index: usize, rng: &mut SimRng) -> (String, bool) {
    const FAMOUS: &[&str] = &[
        "nytimes.com",
        "washingtonpost.com",
        "cnn.com",
        "stanford.edu",
        "columbia.edu",
        "microsoft.com",
        "cloudflare.com",
        "amazonaws.com",
        "theguardian.com",
        "bbc.co.uk",
    ];
    // ≈2.8 % of registered domains behind handles are in the top-1M (§5).
    if rng.chance(0.028) {
        ((*rng.pick(FAMOUS)).to_string(), true)
    } else {
        const TLDS: &[&str] = &[
            "com", "net", "org", "io", "dev", "me", "social", "de", "jp", "com.br",
        ];
        let tld = TLDS[index % TLDS.len()];
        (format!("{}.{tld}", username(index)), false)
    }
}

/// Draw a user profile.
pub fn draw_user(
    index: usize,
    joined: Datetime,
    config: &ScenarioConfig,
    rng: &mut SimRng,
    registrar_count: usize,
) -> UserProfile {
    let language = draw_language(rng);
    let name = username(index);

    // Handle choice: 98.9 % custodial; the remainder split between dedicated
    // subdomain providers and self-managed domains.
    let (handle, handle_choice, did) = if rng.chance(0.989) {
        let handle = Handle::parse(&format!("{name}.bsky.social")).expect("valid handle");
        (
            handle,
            HandleChoice::BskySocial,
            Did::plc_from_seed(name.as_bytes()),
        )
    } else if rng.chance(0.5) {
        let weights: Vec<f64> = SUBDOMAIN_PROVIDERS.iter().map(|(_, w)| *w).collect();
        let provider = SUBDOMAIN_PROVIDERS[rng.pick_weighted(&weights).unwrap_or(0)].0;
        let handle = Handle::parse(&format!("{name}.{provider}")).expect("valid handle");
        (
            handle,
            HandleChoice::ProviderSubdomain {
                provider: provider.to_string(),
            },
            Did::plc_from_seed(name.as_bytes()),
        )
    } else {
        let (domain, in_tranco) = self_managed_domain(index, rng);
        // WHOIS coverage: ~92 % of registered domains have WHOIS data and
        // ~76 % have an IANA ID; domains without either get `None`.
        let registrar_index = if rng.chance(0.83) {
            Some(rng.range(0..registrar_count.max(1)))
        } else {
            None
        };
        let handle = Handle::parse(&domain).expect("valid handle");
        // A handful of identities (6 on the live network) use did:web.
        let did = if index < (config.scaled(6)).max(1) as usize && !in_tranco {
            Did::web(&domain).unwrap_or_else(|_| Did::plc_from_seed(name.as_bytes()))
        } else {
            Did::plc_from_seed(name.as_bytes())
        };
        (
            handle,
            HandleChoice::SelfManaged {
                domain,
                registrar_index,
                in_tranco_top1m: in_tranco,
            },
            did,
        )
    };

    let proof = if rng.chance(0.987) {
        ProofChoice::DnsTxt
    } else {
        ProofChoice::WellKnown
    };

    // Activity weight: Zipf over the population, so a few accounts are very
    // popular/active (the official account, newspapers, ...) and most are
    // quiet.
    let rank = rng.zipf(config.target_users().max(2), 1.05);
    let activity_weight = 1.0 / (rank as f64).powf(0.6);

    // Media behaviour varies by community: the art-heavy communities attach
    // more media; Japanese-language posts attach fewer alt texts on average
    // (these drive the relative label volumes of Table 6).
    let media_probability = match language.as_str() {
        "ja" => 0.38,
        "en" => 0.30,
        _ => 0.25,
    };
    let missing_alt_probability = 0.62;
    let adult_probability = 0.10;

    UserProfile {
        index,
        did,
        handle,
        handle_choice,
        proof,
        language,
        joined,
        activity_weight,
        media_probability,
        missing_alt_probability,
        adult_probability,
        uses_whitewind: rng.chance(0.0005),
    }
}

// ---------------------------------------------------------------------------
// The population plan: the deterministic skeleton of a run
// ---------------------------------------------------------------------------

/// Numbered per-(user, day) random streams. Each purpose gets its own
/// derived generator so any single quantity (the activity coin, the post
/// count, the commit timestamp) can be recomputed in isolation without
/// replaying the rest of the user's day.
#[derive(Debug, Clone, Copy)]
pub enum DayPurpose {
    /// The daily activity coin.
    Active = 0,
    /// The second-of-day all of the user's commits carry.
    When = 1,
    /// The number of posts published.
    Posts = 2,
    /// Everything else: post contents, like/repost/follow/block targets,
    /// third-party records and identity churn. Consumed sequentially, and
    /// only ever by the user's owning shard.
    Content = 3,
}

/// The deterministic skeleton of a simulated run: every user's profile,
/// signup day and per-day random streams, derived entirely from
/// `(seed, scale)` — never from mutable world state.
///
/// This is the primitive that makes the population shardable. Every shard
/// builds the *same* plan (it is cheap: one profile draw per user), so any
/// shard can answer questions about any user — did `u` join yet, was `u`
/// active on day `d`, how many posts did `u` publish that day, and what are
/// their URIs — without simulating `u`. Cross-user interactions (likes,
/// follows, blocks, feed curation targets) are resolved against the plan
/// instead of against live state, which removes every cross-shard data
/// dependency from the simulation: `union(shard events) == serial events`,
/// bit for bit.
#[derive(Debug, Clone)]
pub struct PopulationPlan {
    seed: u64,
    start: Datetime,
    total_days: usize,
    /// Per-day planned signups.
    signup_schedule: Vec<u32>,
    /// All profiles, indexed by global user index, `joined` already set.
    profiles: Vec<UserProfile>,
    /// Per-user base RNG, forked from the user's DID.
    user_rngs: Vec<SimRng>,
    /// Per-user FNV-1a hash of the DID (shard assignment).
    did_hashes: Vec<u64>,
    /// Join day index per user.
    join_days: Vec<u32>,
    /// `joined_counts[d]` = number of users with `join_day <= d`.
    joined_counts: Vec<u32>,
    /// Cumulative activity weights in index order (`len == users + 1`).
    weight_cumsum: Vec<f64>,
    /// Daily active fraction from the growth epochs.
    active_fractions: Vec<f64>,
    /// User indices sorted by activity weight (descending, stable).
    popularity_order: Vec<u32>,
}

/// FNV-1a over a DID string; the per-DID shard assignment hash. This is
/// [`Did::shard_hash`] — the same hash the AppView's entity shards route
/// actors by — re-exported under the name the plan has always used.
pub fn did_hash(did: &Did) -> u64 {
    did.shard_hash()
}

impl PopulationPlan {
    /// Build the plan for a scenario. Deterministic in `(seed, scale)`.
    pub fn build(config: &ScenarioConfig) -> PopulationPlan {
        let root = SimRng::new(config.seed);
        let total_days = config.total_days().max(1) as usize;

        // Signup schedule: per-day counts per the growth epochs, normalised
        // to the target population (carry-error accumulation keeps the total
        // exact without rounding drift).
        let mut raw = vec![0f64; total_days];
        let mut active_fractions = vec![0f64; total_days];
        for (day_idx, raw_count) in raw.iter_mut().enumerate() {
            let day = config.start.plus_days(day_idx as i64);
            if let Some(epoch) = GROWTH_EPOCHS.iter().find(|e| {
                let start = Datetime::from_ymd(e.start.0, e.start.1, e.start.2).unwrap();
                let end = Datetime::from_ymd(e.end.0, e.end.1, e.end.2).unwrap();
                day >= start && day < end
            }) {
                *raw_count = epoch.daily_signup_fraction;
                active_fractions[day_idx] = epoch.daily_active_fraction;
            }
        }
        let raw_total: f64 = raw.iter().sum();
        let target = config.target_users() as f64;
        let mut signup_schedule = Vec::with_capacity(total_days);
        let mut carried = 0.0f64;
        for value in &raw {
            let exact = value / raw_total.max(1e-12) * target + carried;
            let whole = exact.floor();
            carried = exact - whole;
            signup_schedule.push(whole as u32);
        }

        // Draw every profile up front. Each user's stream is forked by index
        // so the profile is a pure function of `(seed, index)`.
        let registrar_count = bsky_identity::registrar::default_catalogue().len();
        let mut profiles = Vec::new();
        let mut user_rngs = Vec::new();
        let mut did_hashes = Vec::new();
        let mut join_days = Vec::new();
        let mut joined_counts = vec![0u32; total_days];
        for (day_idx, &count) in signup_schedule.iter().enumerate() {
            let day = config.start.plus_days(day_idx as i64);
            for _ in 0..count {
                let index = profiles.len();
                let mut rng = root.fork(&format!("user-{index}"));
                let profile = draw_user(index, day, config, &mut rng, registrar_count);
                // The per-day streams are derived from the user's DID, so a
                // shard holding this DID regenerates exactly the streams the
                // serial run uses.
                user_rngs.push(root.fork(&profile.did.to_string()));
                did_hashes.push(did_hash(&profile.did));
                join_days.push(day_idx as u32);
                profiles.push(profile);
            }
            joined_counts[day_idx] = profiles.len() as u32;
        }

        let mut weight_cumsum = Vec::with_capacity(profiles.len() + 1);
        weight_cumsum.push(0.0);
        for profile in &profiles {
            weight_cumsum.push(weight_cumsum.last().unwrap() + profile.activity_weight);
        }

        let mut popularity_order: Vec<u32> = (0..profiles.len() as u32).collect();
        popularity_order.sort_by(|a, b| {
            profiles[*b as usize]
                .activity_weight
                .partial_cmp(&profiles[*a as usize].activity_weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });

        PopulationPlan {
            seed: config.seed,
            start: config.start,
            total_days,
            signup_schedule,
            profiles,
            user_rngs,
            did_hashes,
            join_days,
            joined_counts,
            weight_cumsum,
            active_fractions,
            popularity_order,
        }
    }

    /// Total planned users.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// First simulated day.
    pub fn start(&self) -> Datetime {
        self.start
    }

    /// Number of planned days.
    pub fn total_days(&self) -> usize {
        self.total_days
    }

    /// The profile of user `index`.
    pub fn profile(&self, index: usize) -> &UserProfile {
        &self.profiles[index]
    }

    /// The join day index of user `index`.
    pub fn join_day(&self, index: usize) -> usize {
        self.join_days[index] as usize
    }

    /// Users with `join_day <= day_idx` (they occupy indices `0..count`).
    pub fn joined_count(&self, day_idx: usize) -> usize {
        if self.joined_counts.is_empty() {
            return 0;
        }
        self.joined_counts[day_idx.min(self.joined_counts.len() - 1)] as usize
    }

    /// Planned signups on a day.
    pub fn signups_on(&self, day_idx: usize) -> std::ops::Range<usize> {
        let until = self.joined_count(day_idx);
        let from = if day_idx == 0 {
            0
        } else {
            self.joined_count(day_idx - 1)
        };
        from..until
    }

    /// Whether `index` lands on shard `shard` of `shard_count` (by DID hash).
    pub fn owned_by(&self, index: usize, shard: usize, shard_count: usize) -> bool {
        shard_count <= 1 || (self.did_hashes[index] % shard_count.max(1) as u64) == shard as u64
    }

    /// The per-(user, day, purpose) random stream.
    pub fn day_rng(&self, index: usize, day_idx: usize, purpose: DayPurpose) -> SimRng {
        self.user_rngs[index].fork_u64((day_idx as u64) << 3 | purpose as u64)
    }

    /// Whether user `index` is active on `day_idx`. Each user flips an
    /// independent coin whose probability is proportional to their activity
    /// weight, normalised so the expected number of active users matches the
    /// epoch's daily active fraction. Independence is what makes the
    /// decision computable by any shard for any user.
    pub fn is_active(&self, index: usize, day_idx: usize) -> bool {
        if day_idx >= self.total_days || self.join_day(index) > day_idx {
            return false;
        }
        let joined = self.joined_count(day_idx);
        if joined == 0 {
            return false;
        }
        let total_weight = self.weight_cumsum[joined];
        if total_weight <= 0.0 {
            return false;
        }
        let fraction = self.active_fractions[day_idx];
        let p = fraction * self.profiles[index].activity_weight * joined as f64 / total_weight;
        self.day_rng(index, day_idx, DayPurpose::Active).chance(p)
    }

    /// The second-of-day all of the user's commits carry on `day_idx`.
    pub fn seconds_of_day(&self, index: usize, day_idx: usize) -> i64 {
        self.day_rng(index, day_idx, DayPurpose::When)
            .range(0..80_000i64)
    }

    /// The commit timestamp of user `index` on `day_idx`.
    pub fn when(&self, index: usize, day_idx: usize) -> Datetime {
        self.start
            .plus_days(day_idx as i64)
            .plus_seconds(self.seconds_of_day(index, day_idx))
    }

    /// Number of posts user `index` publishes on `day_idx` (0 when
    /// inactive). Any shard can compute this for any user; it is how likes
    /// and reposts target other shards' posts without seeing them.
    pub fn posts_on(&self, index: usize, day_idx: usize) -> u64 {
        if !self.is_active(index, day_idx) {
            return 0;
        }
        let weight = self.profiles[index].activity_weight;
        self.day_rng(index, day_idx, DayPurpose::Posts)
            .poisson(1.8_f64.min(4.0 * weight + 0.9))
    }

    /// The record key of the `slot`-th post of a user-day.
    pub fn post_rkey(day_idx: usize, slot: u64) -> String {
        format!("p{day_idx:05}s{slot:02}")
    }

    /// The `at://` URI of the `slot`-th post of user `index` on `day_idx`.
    pub fn post_uri(&self, index: usize, day_idx: usize, slot: u64) -> AtUri {
        AtUri::record(
            self.profiles[index].did.clone(),
            Nsid::parse(known::POST).unwrap(),
            Self::post_rkey(day_idx, slot),
        )
    }

    /// Weighted pick (by activity weight) among the users joined by
    /// `day_idx`, using the caller's stream. `None` when nobody joined yet.
    pub fn pick_joined_weighted(&self, day_idx: usize, rng: &mut SimRng) -> Option<usize> {
        let joined = self.joined_count(day_idx);
        if joined == 0 {
            return None;
        }
        let total = self.weight_cumsum[joined];
        if total <= 0.0 {
            return None;
        }
        let target = rng.unit() * total;
        let idx = self.weight_cumsum[..=joined].partition_point(|&c| c <= target);
        Some((idx - 1).min(joined - 1))
    }

    /// The user holding popularity rank `rank` (1 = most popular) among the
    /// users joined by `day_idx`.
    pub fn creator_for_rank(&self, rank: u64, day_idx: usize) -> Option<usize> {
        let joined = self.joined_count(day_idx);
        if joined == 0 {
            return None;
        }
        let rank = (rank.max(1) as usize).min(joined);
        self.popularity_order
            .iter()
            .filter(|&&i| (i as usize) < joined)
            .nth(rank - 1)
            .map(|&i| i as usize)
    }

    /// Pick a recently published post anywhere in the network: draw a
    /// weighted author among the joined users, a day within the last three,
    /// and one of the author's post slots — all against the plan, so the
    /// pick never needs the author's shard. `None` when no attempt found a
    /// published post.
    pub fn pick_recent_post(&self, today_idx: usize, rng: &mut SimRng) -> Option<AtUri> {
        for _ in 0..6 {
            let back = rng.range(0..3i64);
            let Some(day_idx) = today_idx.checked_sub(back as usize) else {
                continue;
            };
            let Some(author) = self.pick_joined_weighted(day_idx, rng) else {
                continue;
            };
            let posts = self.posts_on(author, day_idx);
            if posts == 0 {
                continue;
            }
            let slot = rng.range(0..posts);
            return Some(self.post_uri(author, day_idx, slot));
        }
        None
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The planned signup schedule (per-day counts).
    pub fn signup_schedule(&self) -> &[u32] {
        &self.signup_schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_many(n: usize) -> Vec<UserProfile> {
        let config = ScenarioConfig::test_scale(3);
        let mut rng = SimRng::new(3).fork("population");
        let joined = Datetime::from_ymd(2023, 7, 1).unwrap();
        (0..n)
            .map(|i| draw_user(i, joined, &config, &mut rng, 249))
            .collect()
    }

    #[test]
    fn usernames_and_dids_are_unique() {
        let users = draw_many(2_000);
        let mut handles: Vec<&str> = users.iter().map(|u| u.handle.as_str()).collect();
        handles.sort();
        let before = handles.len();
        handles.dedup();
        // Handles are unique except famous self-managed domains, which can
        // repeat (several staff accounts under one newsroom domain).
        assert!(before - handles.len() < 20);
        let mut dids: Vec<String> = users.iter().map(|u| u.did.to_string()).collect();
        dids.sort();
        dids.dedup();
        assert!(dids.len() >= before - 20);
    }

    #[test]
    fn handle_concentration_matches_calibration() {
        let users = draw_many(5_000);
        let custodial = users.iter().filter(|u| u.is_bsky_social()).count();
        let share = custodial as f64 / users.len() as f64;
        assert!((0.975..0.998).contains(&share), "bsky.social share {share}");
        // Some users chose provider subdomains and some self-managed domains.
        assert!(users
            .iter()
            .any(|u| matches!(u.handle_choice, HandleChoice::ProviderSubdomain { .. })));
        assert!(users
            .iter()
            .any(|u| matches!(u.handle_choice, HandleChoice::SelfManaged { .. })));
    }

    #[test]
    fn proof_mechanism_split() {
        let users = draw_many(5_000);
        let txt = users
            .iter()
            .filter(|u| u.proof == ProofChoice::DnsTxt)
            .count();
        let share = txt as f64 / users.len() as f64;
        assert!(share > 0.96, "DNS TXT share {share}");
    }

    #[test]
    fn language_distribution_roughly_matches() {
        let users = draw_many(8_000);
        let en = users.iter().filter(|u| u.language == "en").count() as f64 / users.len() as f64;
        let ja = users.iter().filter(|u| u.language == "ja").count() as f64 / users.len() as f64;
        let pt = users.iter().filter(|u| u.language == "pt").count() as f64 / users.len() as f64;
        assert!((0.33..0.47).contains(&en), "en share {en}");
        assert!((0.28..0.42).contains(&ja), "ja share {ja}");
        assert!((0.06..0.15).contains(&pt), "pt share {pt}");
        assert!(en > ja, "English remains the largest community");
    }

    #[test]
    fn activity_weights_are_heavy_tailed() {
        let users = draw_many(5_000);
        let mut weights: Vec<f64> = users.iter().map(|u| u.activity_weight).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_decile: f64 = weights[..500].iter().sum();
        let total: f64 = weights.iter().sum();
        assert!(
            top_decile / total > 0.25,
            "top decile share {}",
            top_decile / total
        );
        assert!(weights.iter().all(|w| *w > 0.0 && *w <= 1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = draw_many(100);
        let b = draw_many(100);
        assert_eq!(a, b);
    }

    #[test]
    fn some_users_are_whitewind_authors_at_large_n() {
        let users = draw_many(10_000);
        let ww = users.iter().filter(|u| u.uses_whitewind).count();
        assert!(ww >= 1, "expected at least one WhiteWind user");
        assert!(ww < 30, "WhiteWind adoption must stay marginal, got {ww}");
    }
}
