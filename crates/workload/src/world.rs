//! The simulated world and its day-by-day driver.
//!
//! [`World::new`] builds the static ecosystem (PDS fleet, PLC directory, DNS
//! zones, registrars, labeler and feed-generator plans); the simulation then
//! advances one day at a time — signups, posting/liking/following activity,
//! handle changes, deletions, label issuance, feed curation, the Relay crawl
//! and AppView ingestion. The measurement pipeline in `bsky-study` drives a
//! `World` and observes it exclusively through the same service interfaces
//! the real study used.
//!
//! ## Sharding
//!
//! A world can simulate the *whole* population ([`World::new`]) or one
//! DID-hash shard of it ([`World::new_shard`]). Every stochastic decision is
//! derived from `(seed, DID, day)` via the [`PopulationPlan`] — never from a
//! shared sequential stream — and every cross-user interaction (like and
//! repost targets, follow targets, feed curation, labeling verdicts) is
//! resolved against the plan or against per-post derived randomness. A
//! shard therefore emits exactly the events the full simulation would emit
//! for its users: the union of `N` shards' firehose streams, repositories,
//! label streams and feed curation equals the serial run's, bit for bit.
//! The ecosystem services (labelers, feed generators) are instantiated in
//! *every* shard and observe that shard's posts; their per-shard state is
//! merged by the study pipeline's analyzer `merge` operation.
//!
//! ## Chunked day steps
//!
//! [`World::step_day`] is a convenience wrapper around the resumable
//! intra-day driver: [`World::begin_day`] plans the day (signups, service
//! activations, the active-user list), [`World::step_chunk`] simulates users
//! until a bounded number of relay events is pending and then crawls, and
//! [`World::end_day`] polls labelers and closes the day. A producer that
//! interleaves `step_chunk` with firehose reads holds only one chunk of
//! events in flight, independent of the day's total volume. That bound is
//! consumer-agnostic: the study's intra-shard pipeline (`--pipeline`) hands
//! each chunk's observations to analyzer worker threads over a bounded
//! channel, so the producer blocks on a full channel instead of buffering —
//! the world never sees more than one chunk outstanding either way.

use crate::config::ScenarioConfig;
use crate::ecosystem::{
    build_feedgen_plans, build_labeler_plans, FeedArchetype, FeedGenPlan, LabelerPlan,
};
use crate::population::{DayPurpose, PopulationPlan, UserProfile};
use bsky_appview::AppView;
use bsky_atproto::blockstore::{StoreConfig, StoreStats};
use bsky_atproto::label::LabelTarget;
use bsky_atproto::nsid::known;
use bsky_atproto::record::{
    BlockRecord, Embed, FeedGeneratorRecord, FollowRecord, ImageEmbed, LikeRecord, MediaKind,
    PostRecord, ProfileRecord, Record, RepostRecord, UnknownRecord,
};
use bsky_atproto::repo::CompactionStats;
use bsky_atproto::Tid;
use bsky_atproto::{cbor, AtUri, Datetime, Did, Handle, Nsid};
use bsky_feedgen::faas::default_platforms;
use bsky_feedgen::{
    CurationMode, FeedFilter, FeedGenerator, FeedInput, FeedPipeline, RetentionPolicy,
};
use bsky_identity::registrar::default_catalogue;
use bsky_identity::resolver::publish;
use bsky_identity::{DidDocument, PlcDirectory, PublicSuffixList, TrancoList, WhoisDatabase};
use bsky_labeler::{LabelerOperator, LabelerRegistry, LabelerService};
use bsky_pds::{Pds, PdsFleet, PdsOperator};
use bsky_relay::{Relay, RelayFederation};
use bsky_simnet::dns::DnsZoneStore;
use bsky_simnet::faults::{FaultCounters, FaultPlan, LABEL_STORM_LOOKBACK_DAYS};
use bsky_simnet::http::WebSpace;
use bsky_simnet::net::AddressPlan;
use bsky_simnet::SimRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which population shard a world simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index in `0..count`.
    pub index: usize,
    /// Total number of shards (1 = the serial, whole-population world).
    pub count: usize,
}

impl ShardSpec {
    /// The whole-population (serial) shard.
    pub fn whole() -> ShardSpec {
        ShardSpec { index: 0, count: 1 }
    }
}

/// Metadata about an instantiated feed generator (plan + creator binding).
#[derive(Debug, Clone)]
pub struct FeedGenInfo {
    /// Index into [`World::feedgens`].
    pub index: usize,
    /// The plan it was built from.
    pub plan: FeedGenPlan,
    /// The creator's population index.
    pub creator_index: usize,
    /// Hosting platform name (`"self-hosted"` when not on a FaaS platform).
    pub platform_name: String,
}

/// Metadata about an instantiated labeler.
#[derive(Debug, Clone)]
pub struct LabelerInfo {
    /// Index into the registry.
    pub index: usize,
    /// The plan it was built from.
    pub plan: LabelerPlan,
    /// Per-consumer stream cursor used by the AppView ingestion.
    pub appview_cursor: usize,
}

/// Resumable state of one simulated day (see [`World::begin_day`]).
#[derive(Debug)]
pub struct DayCursor {
    day: Datetime,
    day_idx: usize,
    /// Global indices of this shard's active users, ascending.
    active: Vec<usize>,
    pos: usize,
}

impl DayCursor {
    /// The day being simulated.
    pub fn day(&self) -> Datetime {
        self.day
    }

    /// Number of active (owned) users this day.
    pub fn active_users(&self) -> usize {
        self.active.len()
    }
}

/// The complete simulated Bluesky world (or one population shard of it).
#[derive(Debug)]
pub struct World {
    /// Scenario configuration.
    pub config: ScenarioConfig,
    /// The deterministic population skeleton (shared across shards).
    pub plan: Arc<PopulationPlan>,
    /// Which shard of the population this world simulates.
    pub shard: ShardSpec,
    /// Signed-up users *owned by this shard*, in signup order. The profile's
    /// `handle` tracks the current handle through churn.
    pub users: Vec<UserProfile>,
    /// PDS fleet (Bluesky-operated + self-hosted).
    pub fleet: PdsFleet,
    /// PLC directory.
    pub plc: PlcDirectory,
    /// DNS zones.
    pub dns: DnsZoneStore,
    /// Web space (well-known documents, did:web documents).
    pub web: WebSpace,
    /// The Relay. Under federation this is the *super-relay* (hub): it
    /// receives every frame forwarded by the regional tier, and every
    /// consumer (AppView, study collector, observatory taps) keeps reading
    /// from it unchanged.
    pub relay: Relay,
    /// The regional relay tier, when [`WorldSpec::relays`] > 1. `None` runs
    /// the classic single-relay topology.
    pub federation: Option<RelayFederation>,
    /// The AppView.
    pub appview: AppView,
    /// Labeler registry.
    pub labelers: LabelerRegistry,
    /// Labeler metadata parallel to the registry.
    pub labeler_info: Vec<LabelerInfo>,
    /// Feed generators.
    pub feedgens: Vec<FeedGenerator>,
    /// Feed generator metadata parallel to `feedgens`.
    pub feedgen_info: Vec<FeedGenInfo>,
    /// WHOIS database.
    pub whois: WhoisDatabase,
    /// Tranco-style ranking.
    pub tranco: TrancoList,
    /// Public suffix list.
    pub psl: PublicSuffixList,
    /// Current simulated day (start of day).
    pub today: Datetime,

    /// Global user index → position in `users` (owned users only).
    owned_local: BTreeMap<usize, usize>,
    labeler_plans: Vec<LabelerPlan>,
    feedgen_plans: Vec<FeedGenPlan>,
    /// Cumulative like-attractiveness weights parallel to `feedgens`.
    feed_like_cumsum: Vec<f64>,
    self_hosted_pds: Vec<String>,
    addresses: AddressPlan,
    /// Firehose cursor of the world's own AppView subscription.
    appview_cursor: u64,
    pub(crate) total_posts: u64,
    pub(crate) total_likes: u64,
    /// The deterministic fault schedule (quiet by default).
    faults: Arc<FaultPlan>,
    /// Workload-side fault accounting, drained by the study collector.
    fault_counters: FaultCounters,
}

/// Everything [`World::from_spec`] needs to build a world: scenario,
/// optional pre-computed population plan, engine-shard slice, storage
/// backend, AppView layout and fault schedule. One spec replaces the old
/// ladder of suffix-combinated constructors
/// (`new_store`/`with_plan_store_appview_faults`/…); callers set only the
/// fields that differ from the defaults.
///
/// None of the knobs below changes a simulated byte — backend, cache,
/// AppView shard count and a quiet fault plan all leave every report
/// byte-identical; only residency, op counts and (for a non-quiet plan)
/// the fault-visibility counters move.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// The scenario (seed, dates, scale, mix).
    pub config: ScenarioConfig,
    /// Pre-computed population plan; built from `config` when `None`. The
    /// sharded study runner builds the plan once and hands an [`Arc`] to
    /// each worker.
    pub plan: Option<Arc<PopulationPlan>>,
    /// The engine-shard slice of the population this world owns.
    pub shard: ShardSpec,
    /// Block-store backend for repositories, the relay mirror and the
    /// AppView (repro `--store mem|paged`).
    pub store: StoreConfig,
    /// AppView entity-shard count (repro `--appview-shards N`).
    pub appview_shards: usize,
    /// Wrap each AppView shard's store in a write-back cache (repro
    /// `--writeback on|off`; on by default).
    pub write_back: bool,
    /// Relay tiers (repro `--relays N`): `1` runs the classic single relay;
    /// `N > 1` federates N regional relays under the super-relay in
    /// [`World::relay`]. Byte-identical either way — cross-relay dedup
    /// makes the hub's stream equal the single relay's by construction.
    pub relays: usize,
    /// The deterministic fault schedule (quiet by default).
    pub faults: Arc<FaultPlan>,
}

impl WorldSpec {
    /// A whole-population spec with default storage and a quiet fault plan.
    pub fn new(config: ScenarioConfig) -> WorldSpec {
        WorldSpec {
            config,
            plan: None,
            shard: ShardSpec::whole(),
            store: StoreConfig::default(),
            appview_shards: 1,
            write_back: true,
            relays: 1,
            faults: Arc::new(FaultPlan::quiet()),
        }
    }

    /// Use an already-computed population plan.
    pub fn plan(mut self, plan: Arc<PopulationPlan>) -> WorldSpec {
        self.plan = Some(plan);
        self
    }

    /// Select the engine-shard slice this world owns.
    pub fn shard(mut self, shard: ShardSpec) -> WorldSpec {
        self.shard = shard;
        self
    }

    /// Select the block-store backend.
    pub fn store(mut self, store: StoreConfig) -> WorldSpec {
        self.store = store;
        self
    }

    /// Select the AppView entity-shard count.
    pub fn appview_shards(mut self, shards: usize) -> WorldSpec {
        self.appview_shards = shards;
        self
    }

    /// Toggle the AppView write-back cache.
    pub fn write_back(mut self, write_back: bool) -> WorldSpec {
        self.write_back = write_back;
        self
    }

    /// Select the relay topology (`1` = single relay, `N > 1` = federated).
    pub fn relays(mut self, relays: usize) -> WorldSpec {
        self.relays = relays;
        self
    }

    /// Install a fault schedule.
    pub fn faults(mut self, faults: Arc<FaultPlan>) -> WorldSpec {
        self.faults = faults;
        self
    }
}

impl World {
    /// Build the whole-population world with every default. No activity has
    /// happened yet; call [`World::step_day`] (or [`World::run_to_end`]) to
    /// simulate.
    pub fn new(config: ScenarioConfig) -> World {
        World::from_spec(WorldSpec::new(config))
    }

    /// Build one population shard (DID-hash partition `index` of `count`)
    /// with every other default.
    pub fn new_shard(config: ScenarioConfig, index: usize, count: usize) -> World {
        World::from_spec(WorldSpec::new(config).shard(ShardSpec { index, count }))
    }

    /// Build a world from a full [`WorldSpec`] — the one constructor every
    /// configuration goes through. Every injected fault is a pure function
    /// of `(seed, DID, day)` — the plan consumes no randomness from the
    /// content/churn streams, so a quiet plan leaves the run byte-identical
    /// to one built without it, and a faulted run stays byte-identical
    /// serial vs. sharded.
    pub fn from_spec(spec: WorldSpec) -> World {
        let WorldSpec {
            config,
            plan,
            shard,
            store,
            appview_shards,
            write_back,
            relays,
            faults,
        } = spec;
        let plan = plan.unwrap_or_else(|| Arc::new(PopulationPlan::build(&config)));
        let root = SimRng::new(config.seed);

        // PDS fleet: default servers plus a few self-hosted ones. Every
        // shard sees the full fleet; accounts land only on the owner shard.
        let mut fleet = PdsFleet::with_default_servers_store(config.default_pds_count, &store);
        let mut self_hosted_pds = Vec::new();
        for i in 0..3 {
            let hostname = format!("pds.selfhosted{i:02}.example");
            fleet.add_server(Pds::with_store(
                hostname.clone(),
                PdsOperator::SelfHosted,
                store.clone(),
            ));
            self_hosted_pds.push(hostname);
        }

        // Ecosystem plans (identical in every shard).
        let labeler_plans = build_labeler_plans(&config, &mut root.fork("world").fork("labelers"));
        let feedgen_plans = build_feedgen_plans(&config, &mut root.fork("world").fork("feeds"));

        // Tranco list: famous domains rank inside the top 1M.
        let tranco = TrancoList::from_ranked(&[
            "google.com".into(),
            "amazonaws.com".into(),
            "microsoft.com".into(),
            "cloudflare.com".into(),
            "nytimes.com".into(),
            "washingtonpost.com".into(),
            "cnn.com".into(),
            "bbc.co.uk".into(),
            "theguardian.com".into(),
            "stanford.edu".into(),
            "columbia.edu".into(),
        ]);

        World {
            users: Vec::new(),
            fleet,
            plc: PlcDirectory::new(),
            dns: DnsZoneStore::new(),
            web: WebSpace::new(),
            relay: Relay::with_store("bsky.network", &store),
            federation: (relays > 1).then(|| RelayFederation::new(relays, &store)),
            appview: AppView::with_shards(appview_shards, &store, write_back),
            labelers: LabelerRegistry::new(),
            labeler_info: Vec::new(),
            feedgens: Vec::new(),
            feedgen_info: Vec::new(),
            whois: WhoisDatabase::new(),
            tranco,
            psl: PublicSuffixList::embedded(),
            today: config.start,
            owned_local: BTreeMap::new(),
            labeler_plans,
            feedgen_plans,
            feed_like_cumsum: Vec::new(),
            self_hosted_pds,
            addresses: AddressPlan::new(),
            appview_cursor: 0,
            total_posts: 0,
            total_likes: 0,
            faults,
            fault_counters: FaultCounters::default(),
            plan,
            shard,
            config,
        }
    }

    /// The fault plan this world runs under.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Workload-side fault accounting so far (drained by the collector
    /// into the run summary — injected faults are never silent).
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault_counters
    }

    /// Whether this shard owns (simulates) the user with the given global
    /// index.
    pub fn owns_user(&self, index: usize) -> bool {
        self.plan
            .owned_by(index, self.shard.index, self.shard.count)
    }

    /// Whether this shard owns an arbitrary DID (used to emit global
    /// singletons — labeler metadata — from exactly one shard).
    pub fn owns_did(&self, did: &Did) -> bool {
        self.shard.count <= 1
            || crate::population::did_hash(did) % self.shard.count as u64 == self.shard.index as u64
    }

    /// Number of days simulated so far.
    pub fn days_elapsed(&self) -> i64 {
        self.today.days_since(self.config.start)
    }

    /// Whether the simulation has reached the configured end date.
    pub fn finished(&self) -> bool {
        self.today >= self.config.end
    }

    /// Run the simulation to the configured end date.
    pub fn run_to_end(&mut self) {
        while !self.finished() {
            self.step_day();
        }
    }

    /// Advance the simulation by one full day (single-chunk convenience
    /// wrapper around [`World::begin_day`] / [`World::step_chunk`] /
    /// [`World::end_day`]).
    pub fn step_day(&mut self) {
        let Some(mut cursor) = self.begin_day() else {
            return;
        };
        while !self.step_chunk(&mut cursor, usize::MAX) {}
        self.end_day(cursor);
    }

    /// Open the next simulated day: process signups, bring planned services
    /// online, and plan the active-user list. Returns `None` when the
    /// simulation already reached its end date.
    pub fn begin_day(&mut self) -> Option<DayCursor> {
        if self.finished() {
            return None;
        }
        let day = self.today;
        let day_idx = self.days_elapsed() as usize;

        // 1. New signups (owned indices only).
        for index in self.plan.signups_on(day_idx) {
            if self.owns_user(index) {
                self.sign_up_user(index, day);
            }
        }

        // 2. Scheduled faults: on the outage day the doomed host's owned
        //    accounts mass-migrate before any of the day's activity.
        if let Some((outage_day, host_index)) = self.faults.outage() {
            if outage_day == day_idx {
                self.apply_host_outage(host_index, day);
            }
        }

        // 3. Bring planned labelers and feed generators online (all shards).
        self.activate_labelers(day);
        self.activate_feedgens(day, day_idx);

        // 4. Plan the day's activity: every owned, joined user flips their
        //    independent per-(DID, day) activity coin.
        let joined = self.plan.joined_count(day_idx);
        let mut active = Vec::new();
        for index in 0..joined {
            if self.owns_user(index) && self.plan.is_active(index, day_idx) {
                active.push(index);
            }
        }

        Some(DayCursor {
            day,
            day_idx,
            active,
            pos: 0,
        })
    }

    /// Simulate active users until at least `chunk_events` relay events are
    /// pending, then crawl the relay (bounding the number of events a
    /// firehose reader sees per subscription read). Returns `true` when the
    /// day's activity is exhausted.
    pub fn step_chunk(&mut self, cursor: &mut DayCursor, chunk_events: usize) -> bool {
        while cursor.pos < cursor.active.len() {
            let user = cursor.active[cursor.pos];
            cursor.pos += 1;
            self.simulate_user_day(user, cursor.day_idx, cursor.day);
            if self.pending_relay_events() >= chunk_events {
                self.crawl_and_index(cursor.day);
                return false;
            }
        }
        self.crawl_and_index(cursor.day);
        true
    }

    /// Close the day: labelers publish due labels, the AppView ingests
    /// them, feeds enforce retention, and the clock advances.
    pub fn end_day(&mut self, cursor: DayCursor) {
        debug_assert!(cursor.pos >= cursor.active.len(), "day not exhausted");
        let day = cursor.day;
        if self.faults.label_storm_day() == Some(cursor.day_idx) {
            self.apply_label_storm(day, cursor.day_idx);
        }
        if self.faults.tombstone_day() == Some(cursor.day_idx) {
            self.apply_tombstone_storm(day);
        }
        self.poll_labelers(day);
        for feed in &mut self.feedgens {
            feed.enforce_retention(day);
        }
        // Day boundary: flush the AppView's dirty counter state and
        // write-back buffers (a query-transparent epoch flush — see
        // `bsky_appview::AppViewIndex::flush`).
        self.appview.flush();
        self.today = day.plus_days(1);
    }

    /// Relay events produced by the fleet but not yet crawled (by the
    /// single relay, or by the regional tier under federation).
    fn pending_relay_events(&self) -> usize {
        match &self.federation {
            Some(fed) => fed.pending_events(&self.fleet),
            None => self.relay.pending_events(&self.fleet),
        }
    }

    /// Crawl the relay tier and let the AppView process the newly ingested
    /// events. Under federation the regions crawl their PDS slices and
    /// forward into the super-relay; either way the AppView subscribes to
    /// `self.relay` and sees the identical stream.
    fn crawl_and_index(&mut self, day: Datetime) {
        let now = day.plus_seconds(86_399);
        match self.federation.as_mut() {
            Some(fed) => {
                fed.crawl_and_forward(&mut self.relay, &self.fleet, now);
            }
            None => {
                self.relay.crawl(&self.fleet, now);
            }
        }
        let sub = self.relay.subscribe(self.appview_cursor);
        self.appview_cursor = sub.cursor;
        for event in &sub.events {
            self.appview.index_mut().process_event(event);
        }
    }

    fn sign_up_user(&mut self, index: usize, today: Datetime) {
        let user = self.plan.profile(index).clone();
        // Per-user signup decisions, derived from the seed and the index so
        // they are identical no matter which shard executes them.
        let mut rng = SimRng::new(self.config.seed).fork(&format!("signup-{index}"));

        // Pick a PDS: almost everyone lands on a default server; a handful
        // self-host (only possible since federation opened).
        let hostname = if today >= Datetime::from_ymd(2024, 2, 1).unwrap() && rng.chance(0.004) {
            self.self_hosted_pds[index % self.self_hosted_pds.len()].clone()
        } else {
            let defaults = self.fleet.default_hostnames();
            defaults[index % defaults.len()].clone()
        };
        if self
            .fleet
            .create_account_on(&hostname, user.did.clone(), user.handle.clone(), today)
            .is_err()
        {
            return;
        }
        let endpoint = self
            .fleet
            .server(&hostname)
            .map(|p| p.endpoint())
            .unwrap_or_default();

        // Identity: DID document in the PLC directory (or did:web), ownership
        // proofs in DNS / well-known, WHOIS registration for custom domains.
        let doc = DidDocument::new(
            user.did.clone(),
            user.handle.clone(),
            format!("simkey-{index}"),
            endpoint,
        );
        match user.did.method() {
            bsky_atproto::DidMethod::Plc => {
                let _ = self.plc.create(doc.clone(), today);
            }
            bsky_atproto::DidMethod::Web => {
                publish::did_web_document(&mut self.web, &doc);
            }
        }
        match user.proof {
            crate::population::ProofChoice::DnsTxt => {
                publish::dns_proof(&mut self.dns, &user.handle, &user.did)
            }
            crate::population::ProofChoice::WellKnown => {
                publish::well_known_proof(&mut self.web, &user.handle, &user.did)
            }
        }
        if let crate::population::HandleChoice::SelfManaged { domain, .. } = &user.handle_choice {
            // The WHOIS record is a property of the *domain*, not of the
            // registering user: famous domains are deliberately shared by
            // several users (newsroom staff accounts), who may land on
            // different shards. Deriving the registrar from the domain
            // keeps `whois.register` idempotent, so every shard's WHOIS
            // database answers identically for shared domains — a per-user
            // draw here would let Table 2 diverge between the serial and
            // sharded runs.
            self.whois
                .register(domain, whois_registrar_for(self.config.seed, domain));
        }

        // AppView learns about the actor and their profile record.
        self.appview
            .index_mut()
            .upsert_actor(&user.did, &user.handle);
        let profile = Record::Profile(ProfileRecord {
            display_name: user.handle.labels()[0].to_string(),
            description: format!("posting in {}", user.language),
            has_avatar: true,
            has_banner: rng.chance(0.4),
            created_at: today,
        });
        let rkey = "self".to_string();
        if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
            let _ = pds.apply_writes(
                &user.did,
                &[bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::PROFILE).unwrap(),
                    rkey: rkey.clone(),
                    record: profile.clone(),
                }],
                today,
            );
        }
        self.appview.index_mut().index_record(
            &user.did,
            &Nsid::parse(known::PROFILE).unwrap(),
            &rkey,
            &profile,
            today,
        );
        self.owned_local.insert(index, self.users.len());
        self.users.push(user);
    }

    fn activate_labelers(&mut self, today: Datetime) {
        let pending: Vec<LabelerPlan> = self
            .labeler_plans
            .iter()
            .filter(|p| p.announced_at.day_index() == today.day_index())
            .cloned()
            .collect();
        for plan in pending {
            let index = self.labelers.announced_count();
            let did = Did::plc_from_seed(format!("labeler-{}", plan.name).as_bytes());
            let _addr = self.addresses.allocate(plan.hosting);
            // The labeler's stream seed derives from the run seed and its
            // index; the service itself re-forks per observed post, so its
            // verdicts are shard-independent.
            let rng = SimRng::new(self.config.seed).fork(&format!("labeler-{index}"));
            let service = LabelerService::new(
                did,
                plan.name.clone(),
                plan.operator,
                plan.hosting,
                plan.policy.clone(),
                plan.announced_at,
                rng,
            );
            self.labelers.register(service);
            self.labeler_info.push(LabelerInfo {
                index,
                plan,
                appview_cursor: 0,
            });
        }
    }

    fn activate_feedgens(&mut self, today: Datetime, day_idx: usize) {
        let platforms = default_platforms();
        let pending: Vec<(usize, FeedGenPlan)> = self
            .feedgen_plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.created_at.day_index() == today.day_index())
            .map(|(i, p)| (i, p.clone()))
            .collect();
        for (plan_index, plan) in pending {
            if self.plan.joined_count(day_idx) == 0 {
                continue;
            }
            let index = self.feedgens.len();
            // Bind the creator: rank 1 = most popular joined user, resolved
            // against the plan so every shard binds identically.
            let Some(creator_index) = self
                .plan
                .creator_for_rank(plan.creator_popularity_rank, day_idx)
            else {
                continue;
            };
            let creator = self.plan.profile(creator_index).did.clone();

            let (platform_name, service_did) = match plan.platform_index {
                Some(i) => {
                    let platform = &platforms[i.min(platforms.len() - 1)];
                    (
                        platform.name.clone(),
                        Did::web(&platform.hostname).expect("valid platform domain"),
                    )
                }
                None => (
                    "self-hosted".to_string(),
                    Did::web(&format!(
                        "feeds.{}",
                        self.plan.profile(creator_index).handle
                    ))
                    .unwrap_or_else(|_| Did::web("selfhosted-feeds.example").expect("valid")),
                ),
            };

            let mode = match plan.archetype {
                FeedArchetype::Personalized => CurationMode::Personalized,
                FeedArchetype::ManualCommunity | FeedArchetype::Empty => CurationMode::Manual,
                FeedArchetype::LanguageAggregator => CurationMode::Pipeline(FeedPipeline {
                    inputs: vec![FeedInput::WholeNetwork],
                    filters: vec![FeedFilter::Language(vec![plan.language.clone()])],
                }),
                FeedArchetype::Adult => CurationMode::Pipeline(FeedPipeline {
                    inputs: vec![FeedInput::WholeNetwork],
                    filters: vec![FeedFilter::RequireMediaKinds(vec![MediaKind::Adult])],
                }),
                FeedArchetype::Topic => {
                    let topic = plan.name.split('-').next().unwrap_or("art").to_string();
                    CurationMode::Pipeline(FeedPipeline {
                        inputs: vec![FeedInput::WholeNetwork],
                        filters: vec![FeedFilter::Keyword(topic)],
                    })
                }
            };
            // Retention is a per-plan property, not a draw from shared
            // state, so every shard instantiates the same policy.
            let mut retention_rng =
                SimRng::new(self.config.seed).fork(&format!("feed-retention-{plan_index}"));
            let retention = if retention_rng.chance(0.45) {
                RetentionPolicy::Days(retention_rng.range(1..10i64) as u32)
            } else if retention_rng.chance(0.3) {
                RetentionPolicy::Count(retention_rng.range(50..500usize))
            } else {
                RetentionPolicy::All
            };
            let record = FeedGeneratorRecord {
                service_did,
                display_name: plan.name.clone(),
                description: plan.description.clone(),
                created_at: plan.created_at,
            };
            // The declaration record lives in the creator's repository —
            // which exists only on the creator's owning shard, so exactly
            // one shard emits it.
            if let Some(pds) = self.fleet.pds_for_mut(&creator) {
                let _ = pds.create_record(
                    &creator,
                    Nsid::parse(known::FEED_GENERATOR).unwrap(),
                    Record::FeedGenerator(record.clone()),
                    today,
                );
            }
            let generator =
                FeedGenerator::new(creator, format!("feed{index:06}"), record, mode, retention);
            self.feedgens.push(generator);
            self.feed_like_cumsum.push(
                self.feed_like_cumsum.last().copied().unwrap_or(0.0)
                    + 1.0 / (plan.creator_popularity_rank as f64 + 1.0),
            );
            self.feedgen_info.push(FeedGenInfo {
                index,
                plan,
                creator_index,
                platform_name,
            });
        }
    }

    /// One active user's actions for one day, applied as a single commit.
    /// Consumes only the user's own per-day streams plus the read-only plan.
    fn simulate_user_day(&mut self, index: usize, day_idx: usize, today: Datetime) {
        let Some(&local) = self.owned_local.get(&index) else {
            return; // signup failed (should not happen)
        };
        let user = self.users[local].clone();
        let mut writes: Vec<bsky_atproto::repo::Write> = Vec::new();
        let mut new_posts: Vec<(String, PostRecord)> = Vec::new();
        let mut indexed: Vec<(Nsid, String, Record)> = Vec::new();

        let when = self.plan.when(index, day_idx);
        let mut rng = self.plan.day_rng(index, day_idx, DayPurpose::Content);
        // Non-post records share one per-day key sequence.
        let mut record_seq = 0u32;
        let next_rkey = |seq: &mut u32| {
            let rkey = format!("r{day_idx:05}s{seq:03}");
            *seq += 1;
            rkey
        };

        // Posts (≈1.8 per active user-day on average, weighted by the user).
        // The count comes from its own stream so other shards can recompute
        // it when targeting this user's posts.
        let post_count = self.plan.posts_on(index, day_idx);
        for slot in 0..post_count {
            let post = draw_post(&user, &mut rng, when);
            let rkey = PopulationPlan::post_rkey(day_idx, slot);
            new_posts.push((rkey.clone(), post.clone()));
            writes.push(bsky_atproto::repo::Write::Create {
                collection: Nsid::parse(known::POST).unwrap(),
                rkey: rkey.clone(),
                record: Record::Post(post.clone()),
            });
            indexed.push((Nsid::parse(known::POST).unwrap(), rkey, Record::Post(post)));
            self.total_posts += 1;
        }

        // Spam wave (fault injection): conscripted accounts pile a burst of
        // spam posts on top of their planned content. Count and content come
        // from dedicated fault forks — never from the user's content stream
        // — so a quiet plan leaves this path byte-inert, and the distinct
        // `f`-prefixed rkeys never collide with planned (`p`/`r`) keys.
        let spam_count = self.faults.spam_posts(&user.did.to_string(), day_idx);
        for slot in 0..spam_count {
            let post = PostRecord::simple(
                format!("fresh followers fast, link in bio #{slot}"),
                &user.language,
                when,
            );
            let rkey = format!("f{day_idx:05}s{slot:02}");
            new_posts.push((rkey.clone(), post.clone()));
            writes.push(bsky_atproto::repo::Write::Create {
                collection: Nsid::parse(known::POST).unwrap(),
                rkey: rkey.clone(),
                record: Record::Post(post.clone()),
            });
            indexed.push((Nsid::parse(known::POST).unwrap(), rkey, Record::Post(post)));
            self.total_posts += 1;
            self.fault_counters.spam_posts_injected += 1;
        }

        // Likes (≈6 per active user-day): mostly on recent posts, sometimes
        // on feed generators. Targets are resolved against the plan, so a
        // like can land on any shard's post.
        let like_count = rng.poisson(6.0);
        for _ in 0..like_count {
            let subject = if !self.feedgens.is_empty() && rng.chance(0.03) {
                let total = self.feed_like_cumsum.last().copied().unwrap_or(0.0);
                let target = rng.unit() * total;
                let idx = self
                    .feed_like_cumsum
                    .partition_point(|&c| c <= target)
                    .min(self.feedgens.len() - 1);
                self.feedgens[idx].add_like();
                self.feedgens[idx].uri().clone()
            } else if let Some(target) = self.plan.pick_recent_post(day_idx, &mut rng) {
                target
            } else {
                continue;
            };
            let rkey = next_rkey(&mut record_seq);
            let record = Record::Like(LikeRecord {
                subject,
                created_at: when,
            });
            writes.push(bsky_atproto::repo::Write::Create {
                collection: Nsid::parse(known::LIKE).unwrap(),
                rkey: rkey.clone(),
                record: record.clone(),
            });
            indexed.push((Nsid::parse(known::LIKE).unwrap(), rkey, record));
            self.total_likes += 1;
        }

        // Reposts (≈0.6).
        for _ in 0..rng.poisson(0.6) {
            if let Some(target) = self.plan.pick_recent_post(day_idx, &mut rng) {
                let rkey = next_rkey(&mut record_seq);
                let record = Record::Repost(RepostRecord {
                    subject: target,
                    created_at: when,
                });
                writes.push(bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::REPOST).unwrap(),
                    rkey: rkey.clone(),
                    record: record.clone(),
                });
                indexed.push((Nsid::parse(known::REPOST).unwrap(), rkey, record));
            }
        }

        // Follows (≈1.3): preferential attachment towards popular users.
        for _ in 0..rng.poisson(1.3) {
            if let Some(target) = self.pick_popular_user(index, day_idx, &mut rng) {
                let rkey = next_rkey(&mut record_seq);
                let record = Record::Follow(FollowRecord {
                    subject: target,
                    created_at: when,
                });
                writes.push(bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::FOLLOW).unwrap(),
                    rkey: rkey.clone(),
                    record: record.clone(),
                });
                indexed.push((Nsid::parse(known::FOLLOW).unwrap(), rkey, record));
            }
        }

        // Blocks (≈0.09): concentrated on a couple of notorious accounts.
        for _ in 0..rng.poisson(0.09) {
            if let Some(target) = self.pick_block_target(index, day_idx, &mut rng) {
                let rkey = next_rkey(&mut record_seq);
                let record = Record::Block(BlockRecord {
                    subject: target,
                    created_at: when,
                });
                writes.push(bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::BLOCK).unwrap(),
                    rkey: rkey.clone(),
                    record: record.clone(),
                });
                indexed.push((Nsid::parse(known::BLOCK).unwrap(), rkey, record));
            }
        }

        // Third-party (WhiteWind) records for the few users who use them.
        if user.uses_whitewind && rng.chance(0.2) {
            let rkey = next_rkey(&mut record_seq);
            let record = Record::Unknown(UnknownRecord {
                record_type: Nsid::parse(known::WHTWND_ENTRY).unwrap(),
                value: cbor::Value::map([
                    ("$type", cbor::Value::text(known::WHTWND_ENTRY)),
                    ("title", cbor::Value::text("long-form thoughts")),
                    ("createdAt", cbor::Value::text(when.to_iso8601())),
                ]),
            });
            writes.push(bsky_atproto::repo::Write::Create {
                collection: Nsid::parse(known::WHTWND_ENTRY).unwrap(),
                rkey: rkey.clone(),
                record: record.clone(),
            });
            indexed.push((Nsid::parse(known::WHTWND_ENTRY).unwrap(), rkey, record));
        }

        if writes.is_empty() {
            return;
        }
        if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
            if pds.apply_writes(&user.did, &writes, when).is_err() {
                return;
            }
        } else {
            return;
        }

        // AppView indexing, feed curation, labeler observation for the new
        // content (the "firehose with blocks" path).
        for (collection, rkey, record) in indexed {
            self.appview
                .index_mut()
                .index_record(&user.did, &collection, &rkey, &record, when);
        }
        for (rkey, post) in new_posts {
            let uri = AtUri::record(user.did.clone(), Nsid::parse(known::POST).unwrap(), rkey);
            for feed in &mut self.feedgens {
                feed.observe_post(&uri, &user.did, &post, when);
            }
            for labeler in self.labelers.all_mut() {
                labeler.observe_post(&uri, &post, when);
            }
        }

        // Occasional identity churn: handle changes and account deletion.
        self.simulate_identity_churn(index, local, today, &mut rng);
    }

    fn pick_popular_user(&self, exclude: usize, day_idx: usize, rng: &mut SimRng) -> Option<Did> {
        if self.plan.joined_count(day_idx) < 2 {
            return None;
        }
        for _ in 0..8 {
            let idx = self.plan.pick_joined_weighted(day_idx, rng)?;
            if idx != exclude {
                return Some(self.plan.profile(idx).did.clone());
            }
        }
        None
    }

    fn pick_block_target(&self, exclude: usize, day_idx: usize, rng: &mut SimRng) -> Option<Did> {
        let joined = self.plan.joined_count(day_idx);
        if joined < 4 {
            return None;
        }
        // Blocks concentrate on two notorious accounts (the impersonator and
        // the propagandist of §4), with a tail over everyone else.
        let notorious = [2usize, 3usize];
        let idx = if rng.chance(0.6) {
            notorious[rng.range(0..notorious.len())]
        } else {
            rng.range(0..joined)
        };
        if idx == exclude {
            return None;
        }
        Some(self.plan.profile(idx).did.clone())
    }

    fn simulate_identity_churn(
        &mut self,
        index: usize,
        local: usize,
        today: Datetime,
        rng: &mut SimRng,
    ) {
        // Handle updates: ≈0.8 % of accounts over the window ⇒ tiny daily
        // probability; 75 % of final handles end up under bsky.social (§5).
        if rng.chance(0.00006) {
            let user = self.users[local].clone();
            let to_bsky = rng.chance(0.7574);
            let new_handle = if to_bsky {
                Handle::parse(&format!(
                    "{}-new.bsky.social",
                    crate::population::username(index)
                ))
            } else {
                Handle::parse(&format!(
                    "{}.example.org",
                    crate::population::username(index)
                ))
            };
            if let Ok(handle) = new_handle {
                if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
                    let _ = pds.change_handle(&user.did, handle.clone(), today);
                }
                let _ = self.plc.update(&user.did, "update_handle", today, |doc| {
                    doc.handle = handle.clone();
                });
                publish::dns_proof(&mut self.dns, &handle, &user.did);
                self.users[local].handle = handle;
            }
        }
        // Account deletions (tombstones): very rare.
        if rng.chance(0.000_015) {
            let user = self.users[local].clone();
            if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
                let _ = pds.delete_account(&user.did, today);
            }
            let _ = self.plc.tombstone(&user.did, today);
        }
        // PDS migrations (identity updates beyond creation): rare.
        if rng.chance(0.00003) && !self.self_hosted_pds.is_empty() {
            let user = self.users[local].clone();
            let destination = self.self_hosted_pds[index % self.self_hosted_pds.len()].clone();
            let handle = user.handle.clone();
            if self
                .fleet
                .migrate_account(&user.did, &destination, handle, today)
                .is_ok()
            {
                let endpoint = self
                    .fleet
                    .server(&destination)
                    .map(|p| p.endpoint())
                    .unwrap_or_default();
                let _ = self.plc.update(&user.did, "update_pds", today, |doc| {
                    doc.set_service(
                        bsky_identity::diddoc::SERVICE_PDS,
                        "AtprotoPersonalDataServer",
                        &endpoint,
                    );
                });
            }
        }
    }

    /// The scheduled PDS host outage: every owned account still on the
    /// doomed default host re-homes to a surviving default host — a
    /// deterministic per-DID draw — with a full account migration and a
    /// PLC service update, exactly like organic churn migration. The
    /// collector's incremental mirror sees the host change and backfills
    /// each displaced repo with a counted full fetch.
    fn apply_host_outage(&mut self, host_index: usize, today: Datetime) {
        let defaults = self.fleet.default_hostnames();
        if defaults.len() < 2 {
            return;
        }
        let doomed = defaults[host_index % defaults.len()].clone();
        let survivors: Vec<String> = defaults.into_iter().filter(|h| *h != doomed).collect();
        let displaced: Vec<(Did, Handle)> = self
            .users
            .iter()
            .filter(|u| self.fleet.locate(&u.did) == Some(doomed.as_str()))
            .map(|u| (u.did.clone(), u.handle.clone()))
            .collect();
        for (did, handle) in displaced {
            let slot = self.faults.rehome_slot(&did.to_string()) as usize % survivors.len();
            let destination = survivors[slot].clone();
            if self
                .fleet
                .migrate_account(&did, &destination, handle, today)
                .is_ok()
            {
                let endpoint = self
                    .fleet
                    .server(&destination)
                    .map(|p| p.endpoint())
                    .unwrap_or_default();
                let _ = self.plc.update(&did, "update_pds", today, |doc| {
                    doc.set_service(
                        bsky_identity::diddoc::SERVICE_PDS,
                        "AtprotoPersonalDataServer",
                        &endpoint,
                    );
                });
                self.fault_counters.outage_migrations += 1;
            }
        }
    }

    /// The scheduled label storm: the official labeler flags a large batch
    /// of recent posts in one day. Post existence is resolved against the
    /// plan (each shard enumerates its own users' posts) and the flag coin
    /// is keyed by post URI, so the union of per-shard storms equals the
    /// serial storm exactly.
    fn apply_label_storm(&mut self, today: Datetime, day_idx: usize) {
        let Some(labeler_index) = self
            .labelers
            .all()
            .iter()
            .position(|l| l.operator() == LabelerOperator::BlueskyOfficial)
            .or_else(|| (!self.labelers.all().is_empty()).then_some(0))
        else {
            return;
        };
        let from = day_idx.saturating_sub(LABEL_STORM_LOOKBACK_DAYS - 1);
        let owned: Vec<usize> = self.owned_local.keys().copied().collect();
        for index in owned {
            for past in from..=day_idx {
                for slot in 0..self.plan.posts_on(index, past) {
                    let uri = self.plan.post_uri(index, past, slot);
                    if self.faults.storm_label(&uri.to_string())
                        && self.labelers.all_mut()[labeler_index]
                            .apply_label(LabelTarget::Record(uri), "spam", today)
                            .is_ok()
                    {
                        self.fault_counters.storm_labels_applied += 1;
                    }
                }
            }
        }
    }

    /// The scheduled account-deletion storm: a per-DID coin deletes a
    /// fraction of this shard's accounts at the end of the day (tombstone
    /// in PLC, `AccountDelete` on the firehose). The relay drops each
    /// deleted repo from its mirror on the next crawl, and the collector's
    /// mirror counts the vanished repos as snapshot skips.
    fn apply_tombstone_storm(&mut self, today: Datetime) {
        let dids: Vec<Did> = self.users.iter().map(|u| u.did.clone()).collect();
        for did in dids {
            if !self.faults.storm_tombstone(&did.to_string()) {
                continue;
            }
            let deleted = self
                .fleet
                .pds_for_mut(&did)
                .map(|pds| pds.delete_account(&did, today).is_ok())
                .unwrap_or(false);
            if deleted {
                let _ = self.plc.tombstone(&did, today);
                self.fault_counters.storm_tombstones += 1;
            }
        }
    }

    fn poll_labelers(&mut self, today: Datetime) {
        let end_of_day = today.plus_seconds(86_399);
        for labeler in self.labelers.all_mut() {
            labeler.poll(end_of_day);
        }
        // The AppView subscribes to every labeler's stream.
        for info in &mut self.labeler_info {
            let labeler = &self.labelers.all()[info.index];
            let (labels, next) = labeler.subscribe_labels(info.appview_cursor);
            for label in labels {
                self.appview.index_mut().ingest_label(label);
            }
            info.appview_cursor = next;
        }
    }

    /// Ground-truth totals (used only by tests and sanity checks, never by
    /// the measurement pipeline). Shard-local.
    pub fn ground_truth_totals(&self) -> (u64, u64) {
        (self.total_posts, self.total_likes)
    }

    /// Aggregate block-store statistics over every repository in the fleet,
    /// the relay's CAR mirror, and the AppView's entity shards (resident vs
    /// spilled bytes).
    pub fn store_stats(&self) -> StoreStats {
        let mut stats = self.fleet.store_stats();
        stats.absorb(&self.relay.store_stats());
        if let Some(fed) = &self.federation {
            stats.absorb(&fed.store_stats());
        }
        stats.absorb(&self.appview.store_stats());
        stats
    }

    /// Block-store statistics of the AppView's entity shards alone (the
    /// bench tracks these as `appview_resident_bytes_*`).
    pub fn appview_store_stats(&self) -> StoreStats {
        self.appview.store_stats()
    }

    /// Counter mutations the AppView's hot/cold split coalesced into
    /// already-dirty entities instead of full block rewrites (summed over
    /// entity shards).
    pub fn appview_counter_coalesced_writes(&self) -> u64 {
        self.appview.index().counter_coalesced_writes()
    }

    /// Run the repository compaction pass over the whole fleet: blocks
    /// older than `cutoff` that left the delta-serving window are
    /// reclaimed. The study producer calls this on its weekly snapshot
    /// cadence; cadence and cutoff derive only from simulated time, so
    /// every shard (and every snapshot mode) compacts identically.
    pub fn compact_repos(&mut self, cutoff: &Tid) -> CompactionStats {
        self.fleet.compact_all(cutoff)
    }
}

/// The WHOIS registrar of a registered domain: a pure function of
/// `(seed, domain)`, reproducing the study's coverage calibration (~83 % of
/// domains have WHOIS data). Domain-keyed so that every shard — and every
/// re-registration of a shared domain — derives the same record.
pub fn whois_registrar_for(seed: u64, domain: &str) -> Option<bsky_identity::registrar::Registrar> {
    let mut rng = SimRng::new(seed).fork(&format!("whois-{domain}"));
    if rng.chance(0.83) {
        let catalogue = default_catalogue();
        Some(catalogue[rng.range(0..catalogue.len())].clone())
    } else {
        None
    }
}

/// Draw one post's content from the user's content stream.
fn draw_post(user: &UserProfile, rng: &mut SimRng, when: Datetime) -> PostRecord {
    const TOPICS: &[&str] = &[
        "art",
        "ramen",
        "news",
        "science",
        "music",
        "cats",
        "football",
        "politics",
        "photography",
        "nude study",
    ];
    let topic = *rng.pick(TOPICS);
    let text = format!(
        "{} post about {} #{}",
        user.language,
        topic,
        topic.split(' ').next().unwrap_or(topic)
    );
    let mut tags = Vec::new();
    if rng.chance(0.015) {
        tags.push("aiart".to_string());
    }
    let embed = if rng.chance(user.media_probability) {
        let kind_roll = rng.unit();
        let kind = if kind_roll < user.adult_probability {
            MediaKind::Adult
        } else if kind_roll < user.adult_probability + 0.012 {
            MediaKind::Graphic
        } else if kind_roll < user.adult_probability + 0.07 {
            MediaKind::GifTenor
        } else if kind_roll < user.adult_probability + 0.10 {
            MediaKind::ScreenshotTwitter
        } else if kind_roll < user.adult_probability + 0.12 {
            MediaKind::ScreenshotBluesky
        } else if kind_roll < user.adult_probability + 0.16 {
            MediaKind::AiGenerated
        } else if kind_roll < user.adult_probability + 0.40 {
            MediaKind::Artwork
        } else {
            MediaKind::Photo
        };
        let alt = if rng.chance(user.missing_alt_probability) {
            None
        } else {
            Some(format!("an image about {topic}"))
        };
        Some(Embed::Images(vec![ImageEmbed { alt, kind }]))
    } else {
        None
    };
    // A tiny fraction of posts carry corrupted (pre-launch) timestamps,
    // reproducing the client bug the paper reports (§7.1).
    let created_at = if rng.chance(0.0001) {
        Datetime::from_ymd(*rng.pick(&[1185, 1776, 1923]), 6, 1).unwrap()
    } else {
        when
    };
    PostRecord {
        text,
        created_at,
        langs: vec![user.language.clone()],
        reply_parent: None,
        embed,
        tags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScenarioConfig {
        let mut config = ScenarioConfig::test_scale(77);
        // Shorten the horizon so unit tests stay fast: start mid-2023.
        config.start = Datetime::from_ymd(2024, 1, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 30).unwrap();
        config.scale = 40_000;
        config
    }

    fn small_world() -> World {
        World::new(small_config())
    }

    #[test]
    fn world_builds_and_steps() {
        let mut world = small_world();
        assert!(!world.finished());
        for _ in 0..30 {
            world.step_day();
        }
        assert!(
            world.users.len() > 5,
            "users signed up: {}",
            world.users.len()
        );
        assert!(world.relay.known_account_count() > 0);
        assert!(world.appview.index().post_count() > 0);
        assert!(world.relay.firehose().total_events() > 0);
        assert_eq!(world.days_elapsed(), 30);
    }

    #[test]
    fn full_run_produces_consistent_ecosystem() {
        let mut world = small_world();
        world.run_to_end();
        assert!(world.finished());
        // Population roughly matches the scaled target.
        let target = world.config.target_users() as f64;
        let actual = world.users.len() as f64;
        assert!(
            (actual / target) > 0.6 && (actual / target) < 1.4,
            "population {actual} vs target {target}"
        );
        // Handle concentration holds.
        let custodial = world.users.iter().filter(|u| u.is_bsky_social()).count();
        assert!(custodial as f64 / actual > 0.95);
        // Activity happened and flowed through the whole pipeline.
        let (posts, likes) = world.ground_truth_totals();
        assert!(posts > 100, "posts {posts}");
        assert!(
            likes > posts,
            "likes ({likes}) should outnumber posts ({posts})"
        );
        assert!(world.appview.index().post_count() > 0);
        assert!(world.appview.index().follow_edge_count() > 0);
        // The relay observed commits and at least one identity/handle event.
        let totals = world.relay.firehose().totals_by_kind();
        assert!(
            totals
                .get(&bsky_atproto::firehose::EventKind::Commit)
                .copied()
                .unwrap_or(0)
                > 0
        );
        // Labelers came online after 2024-03-15 and issued labels.
        assert!(world.labelers.announced_count() > 20);
        assert!(world.labelers.active_count() >= 2);
        assert!(world.appview.index().labels_ingested() > 0);
        // Feed generators exist and most curated something.
        assert!(!world.feedgens.is_empty());
        let curating = world.feedgens.iter().filter(|f| f.has_curated()).count();
        assert!(curating > 0);
        // The PLC directory has roughly one document per did:plc user.
        assert!(!world.plc.is_empty());
        assert!(world.plc.len() <= world.users.len());
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = small_world();
        let mut b = small_world();
        for _ in 0..25 {
            a.step_day();
            b.step_day();
        }
        assert_eq!(a.users.len(), b.users.len());
        assert_eq!(a.ground_truth_totals(), b.ground_truth_totals());
        assert_eq!(
            a.relay.firehose().total_events(),
            b.relay.firehose().total_events()
        );
        assert_eq!(
            a.appview.index().labels_ingested(),
            b.appview.index().labels_ingested()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = ScenarioConfig::test_scale(1);
        config.start = Datetime::from_ymd(2024, 2, 1).unwrap();
        config.end = Datetime::from_ymd(2024, 3, 15).unwrap();
        config.scale = 40_000;
        let mut a = World::new(config);
        let mut b = World::new(ScenarioConfig { seed: 2, ..config });
        for _ in 0..40 {
            a.step_day();
            b.step_day();
        }
        assert_ne!(a.ground_truth_totals(), b.ground_truth_totals());
    }

    #[test]
    fn shards_partition_the_population_exactly() {
        let config = small_config();
        let mut whole = World::new(config);
        whole.run_to_end();
        let shards = 3usize;
        let mut shard_users = 0usize;
        let mut shard_posts = 0u64;
        let mut shard_likes = 0u64;
        let mut shard_events = 0u64;
        for index in 0..shards {
            let mut shard = World::new_shard(config, index, shards);
            shard.run_to_end();
            shard_users += shard.users.len();
            let (p, l) = shard.ground_truth_totals();
            shard_posts += p;
            shard_likes += l;
            shard_events += shard.relay.firehose().total_events();
        }
        // The union of the shards is exactly the serial world: same users,
        // same posts, same likes, same firehose events.
        assert_eq!(shard_users, whole.users.len());
        assert_eq!(
            (shard_posts, shard_likes),
            whole.ground_truth_totals(),
            "sharded activity must reproduce the serial run exactly"
        );
        assert_eq!(shard_events, whole.relay.firehose().total_events());
    }

    #[test]
    fn whois_records_are_domain_derived_and_shard_independent() {
        // Famous domains are shared by several users who can land on
        // different shards; the WHOIS answer must not depend on which user
        // (or shard) registered last.
        let config = small_config();
        for domain in ["nytimes.com", "cnn.com", "stanford.edu"] {
            let a = whois_registrar_for(config.seed, domain);
            let b = whois_registrar_for(config.seed, domain);
            assert_eq!(
                a.as_ref().map(|r| (r.iana_id, r.name.clone())),
                b.as_ref().map(|r| (r.iana_id, r.name.clone()))
            );
        }
        let mut whole = World::new(config);
        whole.run_to_end();
        for index in 0..2 {
            let mut shard = World::new_shard(config, index, 2);
            shard.run_to_end();
            // Every domain the shard registered answers exactly as in the
            // serial world.
            for user in &shard.users {
                if let crate::population::HandleChoice::SelfManaged { domain, .. } =
                    &user.handle_choice
                {
                    let serial = whole
                        .whois
                        .query(domain)
                        .and_then(|r| r.registrar.as_ref().map(|g| (g.iana_id, g.name.clone())));
                    let sharded = shard
                        .whois
                        .query(domain)
                        .and_then(|r| r.registrar.as_ref().map(|g| (g.iana_id, g.name.clone())));
                    assert_eq!(serial, sharded, "domain {domain}");
                }
            }
        }
    }

    #[test]
    fn shards_reproduce_serial_label_streams() {
        let config = small_config();
        let mut whole = World::new(config);
        whole.run_to_end();
        let mut whole_labels: Vec<String> = whole
            .labelers
            .all()
            .iter()
            .flat_map(|l| l.subscribe_labels(0).0.iter())
            .map(|l| {
                format!(
                    "{}|{}|{}|{}|{}",
                    l.src,
                    l.target.uri(),
                    l.value,
                    l.negated,
                    l.created_at.to_iso8601()
                )
            })
            .collect();
        whole_labels.sort();

        let shards = 3usize;
        let mut sharded_labels: Vec<String> = Vec::new();
        for index in 0..shards {
            let mut shard = World::new_shard(config, index, shards);
            shard.run_to_end();
            sharded_labels.extend(
                shard
                    .labelers
                    .all()
                    .iter()
                    .flat_map(|l| l.subscribe_labels(0).0.iter())
                    .map(|l| {
                        format!(
                            "{}|{}|{}|{}|{}",
                            l.src,
                            l.target.uri(),
                            l.value,
                            l.negated,
                            l.created_at.to_iso8601()
                        )
                    }),
            );
        }
        sharded_labels.sort();
        assert!(!whole_labels.is_empty());
        assert_eq!(whole_labels, sharded_labels);
    }

    #[test]
    fn appview_shards_and_store_do_not_change_the_world() {
        let config = small_config();
        let mut baseline = World::new(config);
        // 4 entity shards over tiny paged stores, write-back cache off (the
        // baseline has it on): the AppView must spill while answering every
        // query exactly like the monolithic default.
        let mut sharded = World::from_spec(
            WorldSpec::new(config)
                .store(StoreConfig::paged().page_size(2048).resident_pages(1))
                .appview_shards(4)
                .write_back(false),
        );
        for _ in 0..45 {
            baseline.step_day();
            sharded.step_day();
        }
        assert_eq!(sharded.appview.index().shard_count(), 4);
        let (a, b) = (baseline.appview.index(), sharded.appview.index());
        assert_eq!(a.post_count(), b.post_count());
        assert_eq!(a.actor_count(), b.actor_count());
        assert_eq!(a.follow_edge_count(), b.follow_edge_count());
        assert_eq!(a.labels_ingested(), b.labels_ingested());
        assert_eq!(a.records_indexed(), b.records_indexed());
        assert_eq!(a.events_processed(), b.events_processed());
        assert!(a.post_count() > 0, "the window must index posts");
        // Point queries and timelines agree for every signed-up user.
        for user in baseline.users.iter().take(25) {
            assert_eq!(a.actor(&user.did), b.actor(&user.did));
            assert_eq!(
                a.following_timeline(&user.did, 20),
                b.following_timeline(&user.did, 20)
            );
        }
        // The paged AppView really spilled, and holds fewer resident bytes.
        let paged = sharded.appview_store_stats();
        let mem = baseline.appview_store_stats();
        assert!(paged.spilled_bytes > 0, "appview never spilled: {paged:?}");
        assert!(paged.resident_bytes < mem.resident_bytes);
    }

    #[test]
    fn chunked_day_steps_match_whole_day_steps() {
        let config = small_config();
        let mut coarse = World::new(config);
        let mut fine = World::new(config);
        for _ in 0..60 {
            coarse.step_day();
            let Some(mut cursor) = fine.begin_day() else {
                break;
            };
            // Tiny chunks: crawl after every ~4 pending events.
            while !fine.step_chunk(&mut cursor, 4) {}
            fine.end_day(cursor);
        }
        assert_eq!(coarse.ground_truth_totals(), fine.ground_truth_totals());
        assert_eq!(
            coarse.relay.firehose().total_events(),
            fine.relay.firehose().total_events()
        );
        assert_eq!(
            coarse.appview.index().post_count(),
            fine.appview.index().post_count()
        );
    }

    #[test]
    fn federated_world_matches_single_relay_world() {
        let config = small_config();
        let mut single = World::new(config);
        let mut fed = World::from_spec(WorldSpec::new(config).relays(2));
        for _ in 0..45 {
            single.step_day();
            fed.step_day();
        }
        assert_eq!(single.ground_truth_totals(), fed.ground_truth_totals());
        // The super-relay's firehose equals the single relay's: same frame
        // bodies, times and sequence numbers, same lifetime volume.
        assert_eq!(
            single.relay.subscribe(0).events,
            fed.relay.subscribe(0).events
        );
        assert_eq!(
            single.relay.firehose().total_events(),
            fed.relay.firehose().total_events()
        );
        assert_eq!(
            single.relay.stats().total_bytes(),
            fed.relay.stats().total_bytes()
        );
        assert_eq!(
            single.relay.known_account_count(),
            fed.relay.known_account_count()
        );
        assert_eq!(
            single.appview.index().post_count(),
            fed.appview.index().post_count()
        );
        assert_eq!(
            single.appview.index().events_processed(),
            fed.appview.index().events_processed()
        );
        // Everything travelled through the regional tier: forwarding and
        // dedup tracking are live, and a clean partition never deduplicates.
        let stats = fed.relay.stats();
        assert!(stats.events_forwarded() > 0);
        assert_eq!(stats.events_forwarded(), stats.dedup_tracked());
        assert_eq!(stats.duplicates_dropped(), 0);
        let tier = fed.federation.as_mut().unwrap();
        assert_eq!(tier.region_count(), 2);
        let traces = tier.take_link_traces();
        assert_eq!(traces.len(), 2, "one tap per region→hub wire");
    }
}
