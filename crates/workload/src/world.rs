//! The simulated world and its day-by-day driver.
//!
//! [`World::new`] builds the static ecosystem (PDS fleet, PLC directory, DNS
//! zones, registrars, labeler and feed-generator plans); [`World::step_day`]
//! advances the simulation by one day — signups, posting/liking/following
//! activity, handle changes, deletions, label issuance, feed curation, the
//! Relay crawl and AppView ingestion. The measurement pipeline in
//! `bsky-study` drives a `World` and observes it exclusively through the same
//! service interfaces the real study used.

use crate::config::{ScenarioConfig, GROWTH_EPOCHS};
use crate::ecosystem::{
    build_feedgen_plans, build_labeler_plans, FeedArchetype, FeedGenPlan, LabelerPlan,
};
use crate::population::{draw_user, HandleChoice, ProofChoice, UserProfile};
use bsky_appview::AppView;
use bsky_atproto::nsid::known;
use bsky_atproto::record::{
    BlockRecord, Embed, FeedGeneratorRecord, FollowRecord, ImageEmbed, LikeRecord, MediaKind,
    PostRecord, ProfileRecord, Record, RepostRecord, UnknownRecord,
};
use bsky_atproto::{cbor, AtUri, Datetime, Did, Handle, Nsid};
use bsky_feedgen::faas::default_platforms;
use bsky_feedgen::{
    CurationMode, FeedFilter, FeedGenerator, FeedInput, FeedPipeline, RetentionPolicy,
};
use bsky_identity::registrar::default_catalogue;
use bsky_identity::resolver::publish;
use bsky_identity::{DidDocument, PlcDirectory, PublicSuffixList, TrancoList, WhoisDatabase};
use bsky_labeler::{LabelerRegistry, LabelerService};
use bsky_pds::{Pds, PdsFleet, PdsOperator};
use bsky_relay::Relay;
use bsky_simnet::dns::DnsZoneStore;
use bsky_simnet::http::WebSpace;
use bsky_simnet::net::AddressPlan;
use bsky_simnet::SimRng;
use std::collections::VecDeque;

/// Metadata about an instantiated feed generator (plan + creator binding).
#[derive(Debug, Clone)]
pub struct FeedGenInfo {
    /// Index into [`World::feedgens`].
    pub index: usize,
    /// The plan it was built from.
    pub plan: FeedGenPlan,
    /// The creator's population index.
    pub creator_index: usize,
    /// Hosting platform name (`"self-hosted"` when not on a FaaS platform).
    pub platform_name: String,
}

/// Metadata about an instantiated labeler.
#[derive(Debug, Clone)]
pub struct LabelerInfo {
    /// Index into the registry.
    pub index: usize,
    /// The plan it was built from.
    pub plan: LabelerPlan,
    /// Per-consumer stream cursor used by the AppView ingestion.
    pub appview_cursor: usize,
}

/// A post kept in the short-term pool that likes/reposts/labels draw from.
#[derive(Debug, Clone)]
struct RecentPost {
    uri: AtUri,
}

/// The complete simulated Bluesky world.
#[derive(Debug)]
pub struct World {
    /// Scenario configuration.
    pub config: ScenarioConfig,
    /// Ground-truth population (drawn lazily as users sign up).
    pub users: Vec<UserProfile>,
    /// PDS fleet (Bluesky-operated + self-hosted).
    pub fleet: PdsFleet,
    /// PLC directory.
    pub plc: PlcDirectory,
    /// DNS zones.
    pub dns: DnsZoneStore,
    /// Web space (well-known documents, did:web documents).
    pub web: WebSpace,
    /// The Relay.
    pub relay: Relay,
    /// The AppView.
    pub appview: AppView,
    /// Labeler registry.
    pub labelers: LabelerRegistry,
    /// Labeler metadata parallel to the registry.
    pub labeler_info: Vec<LabelerInfo>,
    /// Feed generators.
    pub feedgens: Vec<FeedGenerator>,
    /// Feed generator metadata parallel to `feedgens`.
    pub feedgen_info: Vec<FeedGenInfo>,
    /// WHOIS database.
    pub whois: WhoisDatabase,
    /// Tranco-style ranking.
    pub tranco: TrancoList,
    /// Public suffix list.
    pub psl: PublicSuffixList,
    /// Current simulated day (start of day).
    pub today: Datetime,

    signup_schedule: Vec<u32>,
    labeler_plans: Vec<LabelerPlan>,
    feedgen_plans: Vec<FeedGenPlan>,
    recent_posts: VecDeque<RecentPost>,
    rng: SimRng,
    rkey_counter: u64,
    self_hosted_pds: Vec<String>,
    addresses: AddressPlan,
    pub(crate) total_posts: u64,
    pub(crate) total_likes: u64,
}

impl World {
    /// Build the world's static state. No activity has happened yet; call
    /// [`World::step_day`] (or [`World::run_to_end`]) to simulate.
    pub fn new(config: ScenarioConfig) -> World {
        let root_rng = SimRng::new(config.seed);
        let rng = root_rng.fork("world");

        // PDS fleet: default servers plus a few self-hosted ones.
        let mut fleet = PdsFleet::with_default_servers(config.default_pds_count);
        let mut self_hosted_pds = Vec::new();
        for i in 0..3 {
            let hostname = format!("pds.selfhosted{i:02}.example");
            fleet.add_server(Pds::new(hostname.clone(), PdsOperator::SelfHosted));
            self_hosted_pds.push(hostname);
        }

        // Signup schedule: per-day counts per the growth epochs, normalised
        // to the target population.
        let total_days = config.total_days().max(1) as usize;
        let mut raw = vec![0f64; total_days];
        for (day_idx, raw_count) in raw.iter_mut().enumerate() {
            let day = config.start.plus_days(day_idx as i64);
            if let Some(epoch) = GROWTH_EPOCHS.iter().find(|e| {
                let start = Datetime::from_ymd(e.start.0, e.start.1, e.start.2).unwrap();
                let end = Datetime::from_ymd(e.end.0, e.end.1, e.end.2).unwrap();
                day >= start && day < end
            }) {
                *raw_count = epoch.daily_signup_fraction;
            }
        }
        let raw_total: f64 = raw.iter().sum();
        let target = config.target_users() as f64;
        let mut signup_schedule = Vec::with_capacity(total_days);
        let mut carried = 0.0f64;
        for value in &raw {
            let exact = value / raw_total.max(1e-12) * target + carried;
            let whole = exact.floor();
            carried = exact - whole;
            signup_schedule.push(whole as u32);
        }

        // Ecosystem plans.
        let labeler_plans = build_labeler_plans(&config, &mut rng.fork("labelers"));
        let feedgen_plans = build_feedgen_plans(&config, &mut rng.fork("feeds"));

        // Tranco list: famous domains rank inside the top 1M.
        let tranco = TrancoList::from_ranked(&[
            "google.com".into(),
            "amazonaws.com".into(),
            "microsoft.com".into(),
            "cloudflare.com".into(),
            "nytimes.com".into(),
            "washingtonpost.com".into(),
            "cnn.com".into(),
            "bbc.co.uk".into(),
            "theguardian.com".into(),
            "stanford.edu".into(),
            "columbia.edu".into(),
        ]);

        World {
            users: Vec::new(),
            fleet,
            plc: PlcDirectory::new(),
            dns: DnsZoneStore::new(),
            web: WebSpace::new(),
            relay: Relay::default(),
            appview: AppView::new(),
            labelers: LabelerRegistry::new(),
            labeler_info: Vec::new(),
            feedgens: Vec::new(),
            feedgen_info: Vec::new(),
            whois: WhoisDatabase::new(),
            tranco,
            psl: PublicSuffixList::embedded(),
            today: config.start,
            signup_schedule,
            labeler_plans,
            feedgen_plans,
            recent_posts: VecDeque::new(),
            rng: rng.fork("activity"),
            rkey_counter: 0,
            self_hosted_pds,
            addresses: AddressPlan::new(),
            total_posts: 0,
            total_likes: 0,
            config,
        }
    }

    /// Number of days simulated so far.
    pub fn days_elapsed(&self) -> i64 {
        self.today.days_since(self.config.start)
    }

    /// Whether the simulation has reached the configured end date.
    pub fn finished(&self) -> bool {
        self.today >= self.config.end
    }

    /// Run the simulation to the configured end date.
    pub fn run_to_end(&mut self) {
        while !self.finished() {
            self.step_day();
        }
    }

    fn next_rkey(&mut self) -> String {
        self.rkey_counter += 1;
        format!("k{:011}", self.rkey_counter)
    }

    /// Advance the simulation by one day.
    pub fn step_day(&mut self) {
        if self.finished() {
            return;
        }
        let today = self.today;

        // 1. New signups.
        let day_idx = self.days_elapsed() as usize;
        let signups = self.signup_schedule.get(day_idx).copied().unwrap_or(0);
        for _ in 0..signups {
            self.sign_up_user(today);
        }

        // 2. Bring planned labelers and feed generators online.
        self.activate_labelers(today);
        self.activate_feedgens(today);

        // 3. Daily activity of existing users.
        self.simulate_activity(today);

        // 4. Labelers publish due labels; the AppView ingests them.
        self.poll_labelers(today);

        // 5. Relay crawl + AppView event processing + retention.
        let cursor = self.relay.firehose().head_seq();
        self.relay.crawl(&self.fleet, today.plus_seconds(86_399));
        let new_events = self.relay.subscribe(cursor);
        for event in &new_events.events {
            self.appview.index_mut().process_event(event);
        }
        for feed in &mut self.feedgens {
            feed.enforce_retention(today);
        }

        self.today = today.plus_days(1);
    }

    fn sign_up_user(&mut self, today: Datetime) {
        let index = self.users.len();
        let registrar_count = default_catalogue().len();
        let mut rng = self.rng.fork(&format!("user-{index}"));
        let user = draw_user(index, today, &self.config, &mut rng, registrar_count);

        // Pick a PDS: almost everyone lands on a default server; a handful
        // self-host (only possible since federation opened).
        let hostname = if today >= Datetime::from_ymd(2024, 2, 1).unwrap() && rng.chance(0.004) {
            self.self_hosted_pds[index % self.self_hosted_pds.len()].clone()
        } else {
            let defaults = self.fleet.default_hostnames();
            defaults[index % defaults.len()].clone()
        };
        if self
            .fleet
            .create_account_on(&hostname, user.did.clone(), user.handle.clone(), today)
            .is_err()
        {
            return;
        }
        let endpoint = self
            .fleet
            .server(&hostname)
            .map(|p| p.endpoint())
            .unwrap_or_default();

        // Identity: DID document in the PLC directory (or did:web), ownership
        // proofs in DNS / well-known, WHOIS registration for custom domains.
        let doc = DidDocument::new(
            user.did.clone(),
            user.handle.clone(),
            format!("simkey-{index}"),
            endpoint,
        );
        match user.did.method() {
            bsky_atproto::DidMethod::Plc => {
                let _ = self.plc.create(doc.clone(), today);
            }
            bsky_atproto::DidMethod::Web => {
                publish::did_web_document(&mut self.web, &doc);
            }
        }
        match user.proof {
            ProofChoice::DnsTxt => publish::dns_proof(&mut self.dns, &user.handle, &user.did),
            ProofChoice::WellKnown => {
                publish::well_known_proof(&mut self.web, &user.handle, &user.did)
            }
        }
        if let HandleChoice::SelfManaged {
            domain,
            registrar_index,
            ..
        } = &user.handle_choice
        {
            let registrar =
                registrar_index.map(|i| default_catalogue()[i % default_catalogue().len()].clone());
            self.whois.register(domain, registrar);
        }

        // AppView learns about the actor and their profile record.
        self.appview
            .index_mut()
            .upsert_actor(&user.did, &user.handle);
        let profile = Record::Profile(ProfileRecord {
            display_name: user.handle.labels()[0].to_string(),
            description: format!("posting in {}", user.language),
            has_avatar: true,
            has_banner: rng.chance(0.4),
            created_at: today,
        });
        let rkey = "self".to_string();
        if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
            let _ = pds.apply_writes(
                &user.did,
                &[bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::PROFILE).unwrap(),
                    rkey: rkey.clone(),
                    record: profile.clone(),
                }],
                today,
            );
        }
        self.appview.index_mut().index_record(
            &user.did,
            &Nsid::parse(known::PROFILE).unwrap(),
            &rkey,
            &profile,
            today,
        );
        self.users.push(user);
    }

    fn activate_labelers(&mut self, today: Datetime) {
        let pending: Vec<LabelerPlan> = self
            .labeler_plans
            .iter()
            .filter(|p| p.announced_at.day_index() == today.day_index())
            .cloned()
            .collect();
        for plan in pending {
            let index = self.labelers.announced_count();
            let did = Did::plc_from_seed(format!("labeler-{}", plan.name).as_bytes());
            let _addr = self.addresses.allocate(plan.hosting);
            let rng = self.rng.fork(&format!("labeler-{index}"));
            let service = LabelerService::new(
                did,
                plan.name.clone(),
                plan.operator,
                plan.hosting,
                plan.policy.clone(),
                plan.announced_at,
                rng,
            );
            self.labelers.register(service);
            self.labeler_info.push(LabelerInfo {
                index,
                plan,
                appview_cursor: 0,
            });
        }
    }

    fn activate_feedgens(&mut self, today: Datetime) {
        let platforms = default_platforms();
        let pending: Vec<FeedGenPlan> = self
            .feedgen_plans
            .iter()
            .filter(|p| p.created_at.day_index() == today.day_index())
            .cloned()
            .collect();
        for plan in pending {
            if self.users.is_empty() {
                continue;
            }
            let index = self.feedgens.len();
            // Bind the creator: rank 1 = most popular joined user.
            let mut by_weight: Vec<usize> = (0..self.users.len()).collect();
            by_weight.sort_by(|a, b| {
                self.users[*b]
                    .activity_weight
                    .partial_cmp(&self.users[*a].activity_weight)
                    .unwrap()
            });
            let rank = (plan.creator_popularity_rank as usize).min(by_weight.len());
            let creator_index = by_weight[rank.saturating_sub(1)];
            let creator = self.users[creator_index].did.clone();

            let (platform_name, service_did) = match plan.platform_index {
                Some(i) => {
                    let platform = &platforms[i.min(platforms.len() - 1)];
                    (
                        platform.name.clone(),
                        Did::web(&platform.hostname).expect("valid platform domain"),
                    )
                }
                None => (
                    "self-hosted".to_string(),
                    Did::web(&format!("feeds.{}", self.users[creator_index].handle))
                        .unwrap_or_else(|_| Did::web("selfhosted-feeds.example").expect("valid")),
                ),
            };

            let mode = match plan.archetype {
                FeedArchetype::Personalized => CurationMode::Personalized,
                FeedArchetype::ManualCommunity | FeedArchetype::Empty => CurationMode::Manual,
                FeedArchetype::LanguageAggregator => CurationMode::Pipeline(FeedPipeline {
                    inputs: vec![FeedInput::WholeNetwork],
                    filters: vec![FeedFilter::Language(vec![plan.language.clone()])],
                }),
                FeedArchetype::Adult => CurationMode::Pipeline(FeedPipeline {
                    inputs: vec![FeedInput::WholeNetwork],
                    filters: vec![FeedFilter::RequireMediaKinds(vec![MediaKind::Adult])],
                }),
                FeedArchetype::Topic => {
                    let topic = plan.name.split('-').next().unwrap_or("art").to_string();
                    CurationMode::Pipeline(FeedPipeline {
                        inputs: vec![FeedInput::WholeNetwork],
                        filters: vec![FeedFilter::Keyword(topic)],
                    })
                }
            };
            let retention = if self.rng.chance(0.45) {
                RetentionPolicy::Days(self.rng.range(1..10i64) as u32)
            } else if self.rng.chance(0.3) {
                RetentionPolicy::Count(self.rng.range(50..500usize))
            } else {
                RetentionPolicy::All
            };
            let record = FeedGeneratorRecord {
                service_did,
                display_name: plan.name.clone(),
                description: plan.description.clone(),
                created_at: plan.created_at,
            };
            // The declaration record lives in the creator's repository.
            if let Some(pds) = self.fleet.pds_for_mut(&creator) {
                let _ = pds.create_record(
                    &creator,
                    Nsid::parse(known::FEED_GENERATOR).unwrap(),
                    Record::FeedGenerator(record.clone()),
                    today,
                );
            }
            let generator =
                FeedGenerator::new(creator, format!("feed{index:06}"), record, mode, retention);
            self.feedgens.push(generator);
            self.feedgen_info.push(FeedGenInfo {
                index,
                plan,
                creator_index,
                platform_name,
            });
        }
    }

    /// Simulate one day of user activity.
    fn simulate_activity(&mut self, today: Datetime) {
        if self.users.is_empty() {
            return;
        }
        let epoch = GROWTH_EPOCHS
            .iter()
            .find(|e| {
                let start = Datetime::from_ymd(e.start.0, e.start.1, e.start.2).unwrap();
                let end = Datetime::from_ymd(e.end.0, e.end.1, e.end.2).unwrap();
                today >= start && today < end
            })
            .copied()
            .unwrap_or(GROWTH_EPOCHS[GROWTH_EPOCHS.len() - 1]);

        let joined: Vec<usize> = (0..self.users.len())
            .filter(|&i| self.users[i].joined <= today)
            .collect();
        let target_active = ((joined.len() as f64) * epoch.daily_active_fraction).round() as usize;
        if target_active == 0 {
            return;
        }
        // Weighted sample of active users (heavy users are active more often).
        let weights: Vec<f64> = joined
            .iter()
            .map(|&i| self.users[i].activity_weight)
            .collect();
        let mut active: Vec<usize> = Vec::with_capacity(target_active);
        let mut seen = std::collections::BTreeSet::new();
        let mut attempts = 0;
        while active.len() < target_active && attempts < target_active * 8 {
            attempts += 1;
            if let Some(pick) = self.rng.pick_weighted(&weights) {
                let user_index = joined[pick];
                if seen.insert(user_index) {
                    active.push(user_index);
                }
            }
        }

        for user_index in active {
            self.simulate_user_day(user_index, today);
        }
    }

    /// One active user's actions for one day, applied as a single commit.
    fn simulate_user_day(&mut self, user_index: usize, today: Datetime) {
        let user = self.users[user_index].clone();
        let mut writes: Vec<bsky_atproto::repo::Write> = Vec::new();
        let mut new_posts: Vec<(String, PostRecord)> = Vec::new();
        let mut indexed: Vec<(Nsid, String, Record)> = Vec::new();

        let seconds_of_day = self.rng.range(0..80_000i64);
        let when = today.plus_seconds(seconds_of_day);

        // Posts (≈1.8 per active user-day on average, weighted by the user).
        let post_count = self
            .rng
            .poisson(1.8_f64.min(4.0 * user.activity_weight + 0.9));
        for _ in 0..post_count {
            let post = self.draw_post(&user, when);
            let rkey = self.next_rkey();
            new_posts.push((rkey.clone(), post.clone()));
            writes.push(bsky_atproto::repo::Write::Create {
                collection: Nsid::parse(known::POST).unwrap(),
                rkey: rkey.clone(),
                record: Record::Post(post.clone()),
            });
            indexed.push((Nsid::parse(known::POST).unwrap(), rkey, Record::Post(post)));
            self.total_posts += 1;
        }

        // Likes (≈6 per active user-day): mostly on recent posts, sometimes
        // on feed generators.
        let like_count = self.rng.poisson(6.0);
        for _ in 0..like_count {
            let subject = if !self.feedgens.is_empty() && self.rng.chance(0.03) {
                let weights: Vec<f64> = self
                    .feedgen_info
                    .iter()
                    .map(|info| 1.0 / (info.plan.creator_popularity_rank as f64 + 1.0))
                    .collect();
                let idx = self.rng.pick_weighted(&weights).unwrap_or(0);
                self.feedgens[idx].add_like();
                self.feedgens[idx].uri().clone()
            } else if let Some(target) = self.pick_recent_post() {
                target
            } else {
                continue;
            };
            let rkey = self.next_rkey();
            let record = Record::Like(LikeRecord {
                subject,
                created_at: when,
            });
            writes.push(bsky_atproto::repo::Write::Create {
                collection: Nsid::parse(known::LIKE).unwrap(),
                rkey: rkey.clone(),
                record: record.clone(),
            });
            indexed.push((Nsid::parse(known::LIKE).unwrap(), rkey, record));
            self.total_likes += 1;
        }

        // Reposts (≈0.6).
        for _ in 0..self.rng.poisson(0.6) {
            if let Some(target) = self.pick_recent_post() {
                let rkey = self.next_rkey();
                let record = Record::Repost(RepostRecord {
                    subject: target,
                    created_at: when,
                });
                writes.push(bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::REPOST).unwrap(),
                    rkey: rkey.clone(),
                    record: record.clone(),
                });
                indexed.push((Nsid::parse(known::REPOST).unwrap(), rkey, record));
            }
        }

        // Follows (≈1.3): preferential attachment towards popular users.
        for _ in 0..self.rng.poisson(1.3) {
            if let Some(target) = self.pick_popular_user(user_index) {
                let rkey = self.next_rkey();
                let record = Record::Follow(FollowRecord {
                    subject: target,
                    created_at: when,
                });
                writes.push(bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::FOLLOW).unwrap(),
                    rkey: rkey.clone(),
                    record: record.clone(),
                });
                indexed.push((Nsid::parse(known::FOLLOW).unwrap(), rkey, record));
            }
        }

        // Blocks (≈0.09): concentrated on a couple of notorious accounts.
        for _ in 0..self.rng.poisson(0.09) {
            if let Some(target) = self.pick_block_target(user_index) {
                let rkey = self.next_rkey();
                let record = Record::Block(BlockRecord {
                    subject: target,
                    created_at: when,
                });
                writes.push(bsky_atproto::repo::Write::Create {
                    collection: Nsid::parse(known::BLOCK).unwrap(),
                    rkey: rkey.clone(),
                    record: record.clone(),
                });
                indexed.push((Nsid::parse(known::BLOCK).unwrap(), rkey, record));
            }
        }

        // Third-party (WhiteWind) records for the few users who use them.
        if user.uses_whitewind && self.rng.chance(0.2) {
            let rkey = self.next_rkey();
            let record = Record::Unknown(UnknownRecord {
                record_type: Nsid::parse(known::WHTWND_ENTRY).unwrap(),
                value: cbor::Value::map([
                    ("$type", cbor::Value::text(known::WHTWND_ENTRY)),
                    ("title", cbor::Value::text("long-form thoughts")),
                    ("createdAt", cbor::Value::text(when.to_iso8601())),
                ]),
            });
            writes.push(bsky_atproto::repo::Write::Create {
                collection: Nsid::parse(known::WHTWND_ENTRY).unwrap(),
                rkey: rkey.clone(),
                record: record.clone(),
            });
            indexed.push((Nsid::parse(known::WHTWND_ENTRY).unwrap(), rkey, record));
        }

        if writes.is_empty() {
            return;
        }
        if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
            if pds.apply_writes(&user.did, &writes, when).is_err() {
                return;
            }
        } else {
            return;
        }

        // AppView indexing, feed curation, labeler observation for the new
        // content (the "firehose with blocks" path).
        for (collection, rkey, record) in indexed {
            self.appview
                .index_mut()
                .index_record(&user.did, &collection, &rkey, &record, when);
        }
        for (rkey, post) in new_posts {
            let uri = AtUri::record(user.did.clone(), Nsid::parse(known::POST).unwrap(), rkey);
            for feed in &mut self.feedgens {
                feed.observe_post(&uri, &user.did, &post, when);
            }
            for labeler in self.labelers.all_mut() {
                labeler.observe_post(&uri, &post, when);
            }
            self.recent_posts.push_back(RecentPost { uri });
            if self.recent_posts.len() > 4_000 {
                self.recent_posts.pop_front();
            }
        }

        // Occasional identity churn: handle changes and account deletion.
        self.simulate_identity_churn(user_index, today);
    }

    fn draw_post(&mut self, user: &UserProfile, when: Datetime) -> PostRecord {
        const TOPICS: &[&str] = &[
            "art",
            "ramen",
            "news",
            "science",
            "music",
            "cats",
            "football",
            "politics",
            "photography",
            "nude study",
        ];
        let topic = *self.rng.pick(TOPICS);
        let text = format!(
            "{} post about {} #{}",
            user.language,
            topic,
            topic.split(' ').next().unwrap_or(topic)
        );
        let mut tags = Vec::new();
        if self.rng.chance(0.015) {
            tags.push("aiart".to_string());
        }
        let embed = if self.rng.chance(user.media_probability) {
            let kind_roll = self.rng.unit();
            let kind = if kind_roll < user.adult_probability {
                MediaKind::Adult
            } else if kind_roll < user.adult_probability + 0.012 {
                MediaKind::Graphic
            } else if kind_roll < user.adult_probability + 0.07 {
                MediaKind::GifTenor
            } else if kind_roll < user.adult_probability + 0.10 {
                MediaKind::ScreenshotTwitter
            } else if kind_roll < user.adult_probability + 0.12 {
                MediaKind::ScreenshotBluesky
            } else if kind_roll < user.adult_probability + 0.16 {
                MediaKind::AiGenerated
            } else if kind_roll < user.adult_probability + 0.40 {
                MediaKind::Artwork
            } else {
                MediaKind::Photo
            };
            let alt = if self.rng.chance(user.missing_alt_probability) {
                None
            } else {
                Some(format!("an image about {topic}"))
            };
            Some(Embed::Images(vec![ImageEmbed { alt, kind }]))
        } else {
            None
        };
        // A tiny fraction of posts carry corrupted (pre-launch) timestamps,
        // reproducing the client bug the paper reports (§7.1).
        let created_at = if self.rng.chance(0.0001) {
            Datetime::from_ymd(*self.rng.pick(&[1185, 1776, 1923]), 6, 1).unwrap()
        } else {
            when
        };
        PostRecord {
            text,
            created_at,
            langs: vec![user.language.clone()],
            reply_parent: None,
            embed,
            tags,
        }
    }

    fn pick_recent_post(&mut self) -> Option<AtUri> {
        if self.recent_posts.is_empty() {
            return None;
        }
        let idx = self.rng.range(0..self.recent_posts.len());
        Some(self.recent_posts[idx].uri.clone())
    }

    fn pick_popular_user(&mut self, exclude: usize) -> Option<Did> {
        if self.users.len() < 2 {
            return None;
        }
        for _ in 0..8 {
            let weights: Vec<f64> = self.users.iter().map(|u| u.activity_weight).collect();
            let idx = self.rng.pick_weighted(&weights)?;
            if idx != exclude && self.users[idx].joined <= self.today {
                return Some(self.users[idx].did.clone());
            }
        }
        None
    }

    fn pick_block_target(&mut self, exclude: usize) -> Option<Did> {
        if self.users.len() < 4 {
            return None;
        }
        // Blocks concentrate on two notorious accounts (the impersonator and
        // the propagandist of §4), with a tail over everyone else.
        let notorious = [2usize, 3usize];
        let idx = if self.rng.chance(0.6) {
            notorious[self.rng.range(0..notorious.len())]
        } else {
            self.rng.range(0..self.users.len())
        };
        if idx == exclude {
            return None;
        }
        Some(self.users[idx].did.clone())
    }

    fn simulate_identity_churn(&mut self, user_index: usize, today: Datetime) {
        // Handle updates: ≈0.8 % of accounts over the window ⇒ tiny daily
        // probability; 75 % of final handles end up under bsky.social (§5).
        if self.rng.chance(0.00006) {
            let user = self.users[user_index].clone();
            let to_bsky = self.rng.chance(0.7574);
            let new_handle = if to_bsky {
                Handle::parse(&format!(
                    "{}-new.bsky.social",
                    crate::population::username(user_index)
                ))
            } else {
                Handle::parse(&format!(
                    "{}.example.org",
                    crate::population::username(user_index)
                ))
            };
            if let Ok(handle) = new_handle {
                if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
                    let _ = pds.change_handle(&user.did, handle.clone(), today);
                }
                let _ = self.plc.update(&user.did, "update_handle", today, |doc| {
                    doc.handle = handle.clone();
                });
                publish::dns_proof(&mut self.dns, &handle, &user.did);
                self.users[user_index].handle = handle;
            }
        }
        // Account deletions (tombstones): very rare.
        if self.rng.chance(0.000_015) {
            let user = self.users[user_index].clone();
            if let Some(pds) = self.fleet.pds_for_mut(&user.did) {
                let _ = pds.delete_account(&user.did, today);
            }
            let _ = self.plc.tombstone(&user.did, today);
        }
        // PDS migrations (identity updates beyond creation): rare.
        if self.rng.chance(0.00003) && !self.self_hosted_pds.is_empty() {
            let user = self.users[user_index].clone();
            let destination = self.self_hosted_pds[user_index % self.self_hosted_pds.len()].clone();
            let handle = user.handle.clone();
            if self
                .fleet
                .migrate_account(&user.did, &destination, handle, today)
                .is_ok()
            {
                let endpoint = self
                    .fleet
                    .server(&destination)
                    .map(|p| p.endpoint())
                    .unwrap_or_default();
                let _ = self.plc.update(&user.did, "update_pds", today, |doc| {
                    doc.set_service(
                        bsky_identity::diddoc::SERVICE_PDS,
                        "AtprotoPersonalDataServer",
                        &endpoint,
                    );
                });
            }
        }
    }

    fn poll_labelers(&mut self, today: Datetime) {
        let end_of_day = today.plus_seconds(86_399);
        for labeler in self.labelers.all_mut() {
            labeler.poll(end_of_day);
        }
        // The AppView subscribes to every labeler's stream.
        for info in &mut self.labeler_info {
            let labeler = &self.labelers.all()[info.index];
            let (labels, next) = labeler.subscribe_labels(info.appview_cursor);
            for label in labels {
                self.appview.index_mut().ingest_label(label);
            }
            info.appview_cursor = next;
        }
    }

    /// Ground-truth totals (used only by tests and sanity checks, never by
    /// the measurement pipeline).
    pub fn ground_truth_totals(&self) -> (u64, u64) {
        (self.total_posts, self.total_likes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        let mut config = ScenarioConfig::test_scale(77);
        // Shorten the horizon so unit tests stay fast: start mid-2023.
        config.start = Datetime::from_ymd(2024, 1, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 30).unwrap();
        config.scale = 40_000;
        World::new(config)
    }

    #[test]
    fn world_builds_and_steps() {
        let mut world = small_world();
        assert!(!world.finished());
        for _ in 0..30 {
            world.step_day();
        }
        assert!(
            world.users.len() > 5,
            "users signed up: {}",
            world.users.len()
        );
        assert!(world.relay.known_account_count() > 0);
        assert!(world.appview.index().post_count() > 0);
        assert!(world.relay.firehose().total_events() > 0);
        assert_eq!(world.days_elapsed(), 30);
    }

    #[test]
    fn full_run_produces_consistent_ecosystem() {
        let mut world = small_world();
        world.run_to_end();
        assert!(world.finished());
        // Population roughly matches the scaled target.
        let target = world.config.target_users() as f64;
        let actual = world.users.len() as f64;
        assert!(
            (actual / target) > 0.6 && (actual / target) < 1.4,
            "population {actual} vs target {target}"
        );
        // Handle concentration holds.
        let custodial = world.users.iter().filter(|u| u.is_bsky_social()).count();
        assert!(custodial as f64 / actual > 0.95);
        // Activity happened and flowed through the whole pipeline.
        let (posts, likes) = world.ground_truth_totals();
        assert!(posts > 100, "posts {posts}");
        assert!(
            likes > posts,
            "likes ({likes}) should outnumber posts ({posts})"
        );
        assert!(world.appview.index().post_count() > 0);
        assert!(world.appview.index().follow_edge_count() > 0);
        // The relay observed commits and at least one identity/handle event.
        let totals = world.relay.firehose().totals_by_kind();
        assert!(
            totals
                .get(&bsky_atproto::firehose::EventKind::Commit)
                .copied()
                .unwrap_or(0)
                > 0
        );
        // Labelers came online after 2024-03-15 and issued labels.
        assert!(world.labelers.announced_count() > 20);
        assert!(world.labelers.active_count() >= 2);
        assert!(world.appview.index().labels_ingested() > 0);
        // Feed generators exist and most curated something.
        assert!(!world.feedgens.is_empty());
        let curating = world.feedgens.iter().filter(|f| f.has_curated()).count();
        assert!(curating > 0);
        // The PLC directory has roughly one document per did:plc user.
        assert!(!world.plc.is_empty());
        assert!(world.plc.len() <= world.users.len());
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = small_world();
        let mut b = small_world();
        for _ in 0..25 {
            a.step_day();
            b.step_day();
        }
        assert_eq!(a.users.len(), b.users.len());
        assert_eq!(a.ground_truth_totals(), b.ground_truth_totals());
        assert_eq!(
            a.relay.firehose().total_events(),
            b.relay.firehose().total_events()
        );
        assert_eq!(
            a.appview.index().labels_ingested(),
            b.appview.index().labels_ingested()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = ScenarioConfig::test_scale(1);
        config.start = Datetime::from_ymd(2024, 2, 1).unwrap();
        config.end = Datetime::from_ymd(2024, 3, 15).unwrap();
        config.scale = 40_000;
        let mut a = World::new(config);
        let mut b = World::new(ScenarioConfig { seed: 2, ..config });
        for _ in 0..40 {
            a.step_day();
            b.step_day();
        }
        assert_ne!(a.ground_truth_totals(), b.ground_truth_totals());
    }
}
