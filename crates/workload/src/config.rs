//! Scenario configuration and calibration constants.
//!
//! The generator is parameterised by a seed and a scale factor; everything
//! else is calibrated directly from the numbers the paper reports, so that
//! the *shape* of every table and figure is preserved at any scale.

use bsky_atproto::Datetime;

/// Calibration constants lifted from the paper (full-network values).
pub mod paper {
    /// Total users observed (§1, §3).
    pub const TOTAL_USERS: u64 = 5_523_919;
    /// Total posts (§1).
    pub const TOTAL_POSTS: u64 = 225_461_969;
    /// Total likes (§4).
    pub const TOTAL_LIKES: u64 = 740_000_000;
    /// Total follows (§4).
    pub const TOTAL_FOLLOWS: u64 = 160_900_000;
    /// Total reposts (§4).
    pub const TOTAL_REPOSTS: u64 = 77_900_000;
    /// Total blocks (§4).
    pub const TOTAL_BLOCKS: u64 = 10_800_000;
    /// Share of handles under bsky.social (§5).
    pub const BSKY_SOCIAL_HANDLE_SHARE: f64 = 0.989;
    /// Number of did:web identities (§5).
    pub const DID_WEB_COUNT: u64 = 6;
    /// Share of custom handles proven via DNS TXT records (§5).
    pub const DNS_TXT_PROOF_SHARE: f64 = 0.987;
    /// Daily active users in April 2024 (§4).
    pub const APRIL_2024_DAU: u64 = 500_000;
    /// Daily likes in April 2024 (§4).
    pub const APRIL_2024_DAILY_LIKES: u64 = 3_000_000;
    /// Daily posts in April 2024 (§4).
    pub const APRIL_2024_DAILY_POSTS: u64 = 800_000;
    /// Daily reposts in April 2024 (§4).
    pub const APRIL_2024_DAILY_REPOSTS: u64 = 300_000;
    /// Announced labelers (§6).
    pub const LABELERS_ANNOUNCED: u64 = 62;
    /// Functional labelers (§6).
    pub const LABELERS_FUNCTIONAL: u64 = 46;
    /// Labelers that issued at least one label (§6).
    pub const LABELERS_ACTIVE: u64 = 36;
    /// Reachable feed generators (§7).
    pub const FEED_GENERATORS: u64 = 40_398;
    /// Share of feed generators that never curated a post (§7).
    pub const FEEDS_NEVER_CURATED_SHARE: f64 = 0.094;
    /// Community share of labels issued in April 2024 (§6.1).
    pub const COMMUNITY_LABEL_SHARE_APRIL: f64 = 0.887;
    /// Share of April 2024 posts that received at least one label (§6.2).
    pub const APRIL_POSTS_LABELED_SHARE: f64 = 0.0421;
    /// Firehose event-type shares (Table 1).
    pub const FIREHOSE_COMMIT_SHARE: f64 = 0.9978;
    /// Estimated firehose output per day (§9), in bytes.
    pub const FIREHOSE_BYTES_PER_DAY: u64 = 30_000_000_000;
}

/// Language communities and their approximate shares of posting users
/// (§4: ≈800 K English, >700 K Japanese, then Portuguese and German).
pub const LANGUAGE_SHARES: &[(&str, f64)] = &[
    ("en", 0.40),
    ("ja", 0.35),
    ("pt", 0.10),
    ("de", 0.06),
    ("ko", 0.03),
    ("fr", 0.03),
    ("es", 0.02),
    ("other", 0.01),
];

/// A growth epoch: a date range with a daily signup level and an activity
/// multiplier, reproducing the shape of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthEpoch {
    /// Human-readable name.
    pub name: &'static str,
    /// First day of the epoch (inclusive).
    pub start: (i32, u32, u32),
    /// Day after the last day of the epoch (exclusive).
    pub end: (i32, u32, u32),
    /// New signups per day as a fraction of the final user population.
    pub daily_signup_fraction: f64,
    /// Fraction of already-joined users active on a given day.
    pub daily_active_fraction: f64,
}

/// The growth epochs of the platform's history (Nov 2022 – Apr 2024).
pub const GROWTH_EPOCHS: &[GrowthEpoch] = &[
    GrowthEpoch {
        name: "private beta",
        start: (2022, 11, 17),
        end: (2023, 2, 1),
        daily_signup_fraction: 0.00002,
        daily_active_fraction: 0.25,
    },
    GrowthEpoch {
        name: "invite-only growth",
        start: (2023, 2, 1),
        end: (2023, 7, 1),
        daily_signup_fraction: 0.0008,
        daily_active_fraction: 0.22,
    },
    GrowthEpoch {
        name: "invite-only plateau",
        start: (2023, 7, 1),
        end: (2024, 2, 6),
        daily_signup_fraction: 0.0012,
        daily_active_fraction: 0.12,
    },
    GrowthEpoch {
        name: "public launch surge",
        start: (2024, 2, 6),
        end: (2024, 3, 1),
        daily_signup_fraction: 0.012,
        daily_active_fraction: 0.14,
    },
    GrowthEpoch {
        name: "post-launch stagnation",
        start: (2024, 3, 1),
        end: (2024, 5, 1),
        daily_signup_fraction: 0.0015,
        daily_active_fraction: 0.095,
    },
];

/// Scenario configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Random seed; a `(seed, scale)` pair fully determines a run.
    pub seed: u64,
    /// Scale denominator: the synthetic network has `TOTAL_USERS / scale`
    /// users (e.g. 2,000 → ≈2,760 users).
    pub scale: u64,
    /// First simulated day.
    pub start: Datetime,
    /// Day after the last simulated day.
    pub end: Datetime,
    /// When the continuous firehose subscription of the study begins
    /// (2024-03-06 in the paper).
    pub firehose_collection_start: Datetime,
    /// Number of default Bluesky-operated PDSes.
    pub default_pds_count: usize,
}

impl ScenarioConfig {
    /// The configuration used by tests: small and fast.
    pub fn test_scale(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            scale: 20_000,
            ..ScenarioConfig::default()
        }
    }

    /// The configuration used by the repro harness (≈2,700 users).
    pub fn repro_scale(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            scale: 2_000,
            ..ScenarioConfig::default()
        }
    }

    /// Target number of users at this scale.
    pub fn target_users(&self) -> u64 {
        (paper::TOTAL_USERS / self.scale).max(40)
    }

    /// Scale a full-network quantity down to this scenario.
    pub fn scaled(&self, full_network_value: u64) -> u64 {
        (full_network_value / self.scale).max(1)
    }

    /// Number of simulated days.
    pub fn total_days(&self) -> i64 {
        self.end.days_since(self.start)
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            scale: 2_000,
            start: Datetime::from_ymd(2022, 11, 17).expect("valid date"),
            end: Datetime::from_ymd(2024, 5, 1).expect("valid date"),
            firehose_collection_start: Datetime::from_ymd(2024, 3, 6).expect("valid date"),
            default_pds_count: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_cover_study_period_without_gaps() {
        let config = ScenarioConfig::default();
        let mut day = config.start;
        while day < config.end {
            let date = day.date();
            let covered = GROWTH_EPOCHS.iter().any(|e| {
                let start = Datetime::from_ymd(e.start.0, e.start.1, e.start.2).unwrap();
                let end = Datetime::from_ymd(e.end.0, e.end.1, e.end.2).unwrap();
                day >= start && day < end
            });
            assert!(covered, "day {date} not covered by any epoch");
            day = day.plus_days(1);
        }
    }

    #[test]
    fn epochs_are_ordered_and_contiguous() {
        for pair in GROWTH_EPOCHS.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "epochs must be contiguous");
        }
    }

    #[test]
    fn language_shares_sum_to_one() {
        let total: f64 = LANGUAGE_SHARES.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(LANGUAGE_SHARES[0].0, "en");
    }

    #[test]
    fn scaling_helpers() {
        let config = ScenarioConfig::test_scale(7);
        assert_eq!(config.seed, 7);
        assert!(config.target_users() >= 200);
        assert!(config.target_users() < 1_000);
        assert_eq!(config.scaled(paper::TOTAL_USERS), config.target_users());
        assert!(config.total_days() > 500);
        let repro = ScenarioConfig::repro_scale(1);
        assert!(repro.target_users() > config.target_users());
    }

    #[test]
    fn signup_fractions_produce_roughly_the_target_population() {
        // Summing signups over all epochs should land within a factor ~2 of
        // the target population (the workload generator normalises exactly;
        // this checks the calibration is sane).
        let config = ScenarioConfig::default();
        let mut total_fraction = 0.0;
        for epoch in GROWTH_EPOCHS {
            let start = Datetime::from_ymd(epoch.start.0, epoch.start.1, epoch.start.2).unwrap();
            let end = Datetime::from_ymd(epoch.end.0, epoch.end.1, epoch.end.2).unwrap();
            total_fraction += epoch.daily_signup_fraction * end.days_since(start) as f64;
        }
        assert!(
            (0.5..2.0).contains(&total_fraction),
            "signup fractions integrate to {total_fraction}"
        );
        let _ = config;
    }
}
