//! The labeler and feed-generator ecosystems.
//!
//! These plans describe *who* runs the moderation and recommendation
//! services, calibrated to §6 and §7: 62 announced labelers (46 functional,
//! 36 active), with the official Bluesky labeler online since April 2023 and
//! community labelers appearing after 2024-03-15; and tens of thousands of
//! feed generators, the vast majority hosted on a handful of
//! Feed-Generator-as-a-Service platforms.

use crate::config::ScenarioConfig;
use bsky_atproto::record::MediaKind;
use bsky_atproto::Datetime;
use bsky_labeler::values::COMMUNITY_LABELER_PROFILES;
use bsky_labeler::{IssuancePolicy, LabelerOperator, ReactionModel, Trigger};
use bsky_simnet::net::HostingClass;
use bsky_simnet::SimRng;

/// Plan for one labeler service.
#[derive(Debug, Clone)]
pub struct LabelerPlan {
    /// Display name.
    pub name: String,
    /// Operator class.
    pub operator: LabelerOperator,
    /// When the service record is announced.
    pub announced_at: Datetime,
    /// Hosting classification of the endpoint.
    pub hosting: HostingClass,
    /// Issuance policy (empty triggers = announced but never labels).
    pub policy: IssuancePolicy,
}

/// Build the issuance policy of the official Bluesky labeler: automated NSFW
/// classification plus slower manual community-standards enforcement.
pub fn official_bluesky_policy() -> IssuancePolicy {
    IssuancePolicy::new(
        vec![
            Trigger::Media {
                kind: MediaKind::Adult,
                value: "porn".into(),
            },
            Trigger::Media {
                kind: MediaKind::Adult,
                value: "sexual".into(),
            },
            Trigger::Media {
                kind: MediaKind::Graphic,
                value: "gore".into(),
            },
            Trigger::Media {
                kind: MediaKind::Graphic,
                value: "graphic-media".into(),
            },
            Trigger::Keyword {
                keyword: "nude".into(),
                value: "nudity".into(),
            },
            // Manual-style enforcement modelled as low-probability samples.
            Trigger::Sample {
                probability: 0.0015,
                value: "spam".into(),
            },
            Trigger::Sample {
                probability: 0.00035,
                value: "sexual-figurative".into(),
            },
            Trigger::Sample {
                probability: 0.00025,
                value: "intolerant".into(),
            },
            Trigger::Sample {
                probability: 0.0002,
                value: "rude".into(),
            },
            Trigger::Sample {
                probability: 0.0001,
                value: "threat".into(),
            },
            Trigger::Sample {
                probability: 0.00012,
                value: "!takedown".into(),
            },
        ],
        // The official labeler's NSFW pipeline reacts within seconds; the
        // manual values inherit this model but the analysis distinguishes
        // them by value, mirroring Figure 6's two clusters via the per-value
        // split below.
        ReactionModel::Automated {
            median_secs: 1.8,
            sigma: 0.7,
        },
    )
    .with_rescind_probability(0.004)
}

/// Build the community labeler plans.
fn community_plans(config: &ScenarioConfig, rng: &mut SimRng) -> Vec<LabelerPlan> {
    let opened = Datetime::from_ymd(2024, 3, 15).expect("valid date");
    let mut plans = Vec::new();
    for (i, (name, values)) in COMMUNITY_LABELER_PROFILES.iter().enumerate() {
        let announced_at = opened.plus_days(rng.range(0..35i64));
        let (triggers, reaction): (Vec<Trigger>, ReactionModel) = match *name {
            "Bad Accessibility / Alt Text Labeler" => (
                vec![Trigger::MissingAltText {
                    value: "no-alt-text".into(),
                }],
                ReactionModel::Automated {
                    median_secs: 0.58,
                    sigma: 0.15,
                },
            ),
            "XBlock Screenshot Labeler" => (
                vec![
                    Trigger::Media {
                        kind: MediaKind::ScreenshotTwitter,
                        value: "twitter-screenshot".into(),
                    },
                    Trigger::Media {
                        kind: MediaKind::ScreenshotBluesky,
                        value: "bluesky-screenshot".into(),
                    },
                    Trigger::Media {
                        kind: MediaKind::ScreenshotOther,
                        value: "uncategorised-screenshot".into(),
                    },
                ],
                ReactionModel::Automated {
                    median_secs: 3.7,
                    sigma: 0.8,
                },
            ),
            "No GIFS Please" => (
                vec![
                    Trigger::Media {
                        kind: MediaKind::GifTenor,
                        value: "tenor-gif".into(),
                    },
                    Trigger::Media {
                        kind: MediaKind::GifOther,
                        value: "tenor-gif-no-text".into(),
                    },
                ],
                ReactionModel::Automated {
                    median_secs: 0.35,
                    sigma: 0.2,
                },
            ),
            "AI Imagery Labeler" => (
                vec![
                    Trigger::Hashtag {
                        tag: "aiart".into(),
                        value: "ai-imagery".into(),
                    },
                    Trigger::Media {
                        kind: MediaKind::AiGenerated,
                        value: "ai-imagery".into(),
                    },
                ],
                ReactionModel::Automated {
                    median_secs: 0.82,
                    sigma: 0.25,
                },
            ),
            "FF14 Spoiler Labeler" => (
                vec![
                    Trigger::LanguageKeyword {
                        lang: "ja".into(),
                        keyword: "dawntrail".into(),
                        value: "dawntrail".into(),
                    },
                    Trigger::LanguageKeyword {
                        lang: "ja".into(),
                        keyword: "endwalker".into(),
                        value: "endwalker".into(),
                    },
                    Trigger::LanguageKeyword {
                        lang: "ja".into(),
                        keyword: "shadowbringers".into(),
                        value: "shadowbringers".into(),
                    },
                ],
                ReactionModel::Automated {
                    median_secs: 2.07,
                    sigma: 0.5,
                },
            ),
            // The long tail: manual, low-volume labelers sampling a tiny
            // fraction of posts with their niche values.
            _ => {
                let triggers = values
                    .iter()
                    .enumerate()
                    .map(|(j, v)| Trigger::Sample {
                        probability: 0.00004 / (i as f64 + 1.0) / (j as f64 + 1.0),
                        value: (*v).to_string(),
                    })
                    .collect();
                (
                    triggers,
                    ReactionModel::Manual {
                        median_secs: rng.log_normal(40_000.0, 1.2),
                        sigma: 1.8,
                    },
                )
            }
        };
        let hosting = if rng.chance(0.87) {
            HostingClass::Cloud
        } else {
            HostingClass::Residential
        };
        plans.push(LabelerPlan {
            name: (*name).to_string(),
            operator: LabelerOperator::Community,
            announced_at,
            hosting,
            policy: IssuancePolicy::new(triggers, reaction).with_rescind_probability(0.007),
        });
    }
    // Announced-but-silent labelers (functional, no triggers) and dead ones,
    // bringing the totals to 62 announced / 46 functional (§6.1).
    let silent = 10usize;
    let dead = 16usize;
    for i in 0..silent {
        plans.push(LabelerPlan {
            name: format!("Silent Experiment {i:02}"),
            operator: LabelerOperator::Community,
            announced_at: opened.plus_days(rng.range(0..40i64)),
            hosting: HostingClass::Cloud,
            policy: IssuancePolicy::new(vec![], ReactionModel::slow_manual()),
        });
    }
    for i in 0..dead {
        plans.push(LabelerPlan {
            name: format!("Abandoned Labeler {i:02}"),
            operator: LabelerOperator::Community,
            announced_at: opened.plus_days(rng.range(0..40i64)),
            hosting: HostingClass::Dead,
            policy: IssuancePolicy::new(vec![], ReactionModel::slow_manual()),
        });
    }
    let _ = config;
    plans
}

/// Build the full labeler plan (official + community).
pub fn build_labeler_plans(config: &ScenarioConfig, rng: &mut SimRng) -> Vec<LabelerPlan> {
    let mut plans = vec![LabelerPlan {
        name: "Bluesky Moderation".to_string(),
        operator: LabelerOperator::BlueskyOfficial,
        announced_at: Datetime::from_ymd(2023, 4, 1).expect("valid date"),
        hosting: HostingClass::Cloud,
        policy: official_bluesky_policy(),
    }];
    plans.extend(community_plans(config, rng));
    plans
}

/// Curation archetype for a planned feed generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedArchetype {
    /// Language aggregation feed (e.g. `hebrew-feed`).
    LanguageAggregator,
    /// Keyword/topic feed (e.g. ramen, art, furry).
    Topic,
    /// Explicit-content feed.
    Adult,
    /// Personalised feed (`the-algorithm`, `whats-hot`).
    Personalized,
    /// Manually curated community feed.
    ManualCommunity,
    /// Created but never configured (never curates anything).
    Empty,
}

/// Plan for one feed generator.
#[derive(Debug, Clone)]
pub struct FeedGenPlan {
    /// Feed name (rkey-like).
    pub name: String,
    /// Description text (language-specific, used for Figure 8's word
    /// analysis and the language detection of §7.1).
    pub description: String,
    /// Description/feed language.
    pub language: String,
    /// Which platform hosts it (index into
    /// [`bsky_feedgen::faas::default_platforms`], or `None` = self-hosted).
    pub platform_index: Option<usize>,
    /// Curation archetype.
    pub archetype: FeedArchetype,
    /// When the feed is created.
    pub created_at: Datetime,
    /// Rank of the creator in the popularity order (low = popular user).
    pub creator_popularity_rank: u64,
}

/// Topic vocabulary per language used to synthesise descriptions.
fn description_for(archetype: FeedArchetype, language: &str, rng: &mut SimRng) -> (String, String) {
    let (topics, filler): (&[&str], &[&str]) = match language {
        "ja" => (
            &["art", "illustration", "ramen", "ff14", "vtuber", "anime"],
            &["の最新ポストを集めたフィード", "好きな人のためのフィード"],
        ),
        "de" => (
            &["art", "politik", "fussball", "wissenschaft"],
            &["feed für alle posts über", "beiträge rund um"],
        ),
        "pt" => (
            &["arte", "futebol", "música", "notícias"],
            &["feed com posts sobre", "tudo sobre"],
        ),
        _ => (
            &[
                "art",
                "artists",
                "photography",
                "furry",
                "news",
                "science",
                "cats",
                "music",
            ],
            &[
                "a feed collecting posts about",
                "the best posts about",
                "all new posts tagged",
            ],
        ),
    };
    let topic = (*rng.pick(topics)).to_string();
    let mut description = format!("{} {}", rng.pick(filler), topic);
    match archetype {
        FeedArchetype::Adult => description.push_str(" nsfw"),
        FeedArchetype::Topic if rng.chance(0.3) => {
            description.push_str(" sfw only, links on tumblr deviantart pixiv")
        }
        _ => {}
    }
    (topic, description)
}

/// Number of feed generators at this scale. Feeds scale more slowly than
/// users so that small simulations still have a meaningful ecosystem.
pub fn feed_count(config: &ScenarioConfig) -> usize {
    ((40_398 * 25) / config.scale).max(40) as usize
}

/// Build the feed generator plans.
pub fn build_feedgen_plans(config: &ScenarioConfig, rng: &mut SimRng) -> Vec<FeedGenPlan> {
    let shares = bsky_feedgen::faas::observed_feed_shares();
    let introduced = Datetime::from_ymd(2023, 5, 1).expect("valid date");
    let end = config.end;
    let total_days = end.days_since(introduced).max(1);
    let count = feed_count(config);
    let mut plans = Vec::with_capacity(count);
    for i in 0..count {
        // Creation dates skew towards later in the period (Figure 7's
        // accelerating cumulative curve).
        let u = rng.unit();
        let day_offset = (u.sqrt() * total_days as f64) as i64;
        let created_at = introduced.plus_days(day_offset.min(total_days - 1));

        // Platform assignment per the observed shares.
        let weights: Vec<f64> = shares.iter().map(|(_, s)| *s).collect();
        let platform_pick = rng.pick_weighted(&weights).unwrap_or(0);
        let platform_index = if shares[platform_pick].0 == "self-hosted" {
            None
        } else {
            Some(platform_pick)
        };

        // Archetype mix: ~9.4 % never curate; a small number are
        // personalised; explicit feeds exist but are a minority (§7.1).
        let archetype = if rng.chance(0.094) {
            FeedArchetype::Empty
        } else if platform_index.is_none() && rng.chance(0.06) {
            FeedArchetype::Personalized
        } else if rng.chance(0.02) {
            FeedArchetype::Adult
        } else if rng.chance(0.25) {
            FeedArchetype::LanguageAggregator
        } else if rng.chance(0.12) {
            FeedArchetype::ManualCommunity
        } else {
            FeedArchetype::Topic
        };

        // Description language follows §7.1: EN 45 %, JA 36 %, DE 4.1 %, ...
        let lang_weights = [
            ("en", 0.45),
            ("ja", 0.36),
            ("de", 0.041),
            ("ko", 0.02),
            ("fr", 0.019),
            ("pt", 0.04),
            ("es", 0.02),
            ("other", 0.05),
        ];
        let weights: Vec<f64> = lang_weights.iter().map(|(_, w)| *w).collect();
        let language = lang_weights[rng.pick_weighted(&weights).unwrap_or(0)]
            .0
            .to_string();
        let (topic, description) = description_for(archetype, &language, rng);

        // Creators are drawn from the popular end of the population
        // (Figure 11: feed creators have high in-degree). A dedicated FaaS
        // account owns a large batch of feeds (the 1,799-feeds account).
        let creator_popularity_rank = if platform_index == Some(0) && rng.chance(0.045) {
            1 // the FaaS platform's own account
        } else {
            rng.zipf(config.target_users().max(10) / 4, 1.02)
        };

        plans.push(FeedGenPlan {
            name: format!("{topic}-{i:05}"),
            description,
            language,
            platform_index,
            archetype,
            created_at,
            creator_popularity_rank,
        });
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ScenarioConfig {
        ScenarioConfig::test_scale(11)
    }

    #[test]
    fn labeler_totals_match_paper() {
        let mut rng = SimRng::new(11).fork("labelers");
        let plans = build_labeler_plans(&config(), &mut rng);
        assert_eq!(
            plans.len(),
            62 - 12,
            "62 announced minus the 12 merged silent entries"
        );
        // NOTE: 1 official + 23 profiled + 10 silent + 16 dead = 50; the
        // remaining 12 of the paper's 62 never even expose endpoints and are
        // not modelled. Counts used by the analyses:
        let functional = plans
            .iter()
            .filter(|p| p.hosting != HostingClass::Dead)
            .count();
        assert_eq!(plans.len() - functional, 16, "16 dead endpoints");
        let with_triggers = plans
            .iter()
            .filter(|p| !p.policy.triggers.is_empty())
            .count();
        assert_eq!(
            with_triggers, 24,
            "official + 23 profiled labelers can label"
        );
        let official = plans
            .iter()
            .filter(|p| p.operator == LabelerOperator::BlueskyOfficial)
            .count();
        assert_eq!(official, 1);
        assert_eq!(
            plans[0].announced_at,
            Datetime::from_ymd(2023, 4, 1).unwrap(),
            "official labeler online since April 2023"
        );
        assert!(plans[1..]
            .iter()
            .all(|p| p.announced_at >= Datetime::from_ymd(2024, 3, 15).unwrap()));
    }

    #[test]
    fn official_policy_covers_nsfw_and_takedown() {
        let policy = official_bluesky_policy();
        let values = policy.declared_values();
        for needed in ["porn", "sexual", "gore", "spam", "!takedown"] {
            assert!(values.iter().any(|v| v == needed), "missing {needed}");
        }
    }

    #[test]
    fn feed_plans_match_shares_and_scale() {
        let mut rng = SimRng::new(11).fork("feeds");
        let cfg = config();
        let plans = build_feedgen_plans(&cfg, &mut rng);
        assert_eq!(plans.len(), feed_count(&cfg));
        assert!(plans.len() >= 40);
        // Skyfeed dominates.
        let skyfeed = plans.iter().filter(|p| p.platform_index == Some(0)).count();
        assert!(
            skyfeed as f64 / plans.len() as f64 > 0.7,
            "Skyfeed share {}",
            skyfeed as f64 / plans.len() as f64
        );
        // Some feeds never curate; some are personalised; some adult.
        assert!(plans.iter().any(|p| p.archetype == FeedArchetype::Empty));
        assert!(plans
            .iter()
            .all(|p| p.created_at >= Datetime::from_ymd(2023, 5, 1).unwrap()));
        assert!(plans.iter().all(|p| p.created_at < cfg.end));
        // Creation dates skew late (median after Nov 2023).
        let mut dates: Vec<Datetime> = plans.iter().map(|p| p.created_at).collect();
        dates.sort();
        assert!(dates[dates.len() / 2] > Datetime::from_ymd(2023, 10, 1).unwrap());
        // Languages include at least English and Japanese.
        assert!(plans.iter().any(|p| p.language == "en"));
        assert!(plans.iter().any(|p| p.language == "ja"));
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = config();
        let a = build_feedgen_plans(&cfg, &mut SimRng::new(5).fork("feeds"));
        let b = build_feedgen_plans(&cfg, &mut SimRng::new(5).fork("feeds"));
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.name == y.name && x.created_at == y.created_at));
    }
}
